"""The multiprocessor machine: caches + bus + protocol + trace replay.

Timing model: each processor has a private clock.  An instruction
fetch costs one execution cycle; cache operations add the CPU cycles
of their :class:`~repro.core.operations.Operation` from the machine's
cost table.  Operations with bus time wait for the bus (adding
contention cycles) and then hold it for the operation's bus cycles.
Snoop updates steal one cycle from each holding processor.

References are replayed in trace order, so processor clocks can drift
relative to one another — the same approximation the paper's simulator
makes ("the order of references from different processors may be
slightly distorted"), which it verified to be benign.
"""

from __future__ import annotations

import heapq
from collections import Counter
from dataclasses import dataclass, field

from repro.core.operations import CostTable, Operation
from repro.sim.bus import TimedBus
from repro.sim.cache import Cache, CacheGeometry
from repro.sim.protocols import Protocol, protocol_class
from repro.trace.records import AccessType, Trace

__all__ = ["CpuStats", "Machine", "SimulationConfig", "SimulationResult"]

_MISS_OPERATIONS = frozenset(
    {
        Operation.CLEAN_MISS_MEMORY,
        Operation.DIRTY_MISS_MEMORY,
        Operation.CLEAN_MISS_CACHE,
        Operation.DIRTY_MISS_CACHE,
    }
)
_DIRTY_VICTIM_OPERATIONS = frozenset(
    {Operation.DIRTY_MISS_MEMORY, Operation.DIRTY_MISS_CACHE}
)


@dataclass(frozen=True)
class SimulationConfig:
    """Machine configuration for one simulation run.

    Attributes:
        cache_bytes: per-processor cache size (paper: 16K/64K/256K).
        block_bytes: cache block and bus transfer size (paper: 16).
        associativity: cache associativity.  Two-way by default: with
            the synthetic traces' separate code/data/shared regions, a
            direct-mapped cache suffers conflict misses well above the
            paper's observed miss-rate range, and the paper does not
            pin the traced machine's associativity.
    """

    cache_bytes: int = 65536
    block_bytes: int = 16
    associativity: int = 2

    @property
    def geometry(self) -> CacheGeometry:
        return CacheGeometry(
            size_bytes=self.cache_bytes,
            block_bytes=self.block_bytes,
            associativity=self.associativity,
        )


@dataclass
class CpuStats:
    """Per-processor counters accumulated during a run."""

    instructions: int = 0
    loads: int = 0
    stores: int = 0
    flushes: int = 0
    clock: float = 0.0
    wait_cycles: float = 0.0
    stolen_cycles: int = 0

    @property
    def utilization(self) -> float:
        """Productive fraction: one cycle per instruction over elapsed."""
        if self.clock == 0.0:
            return 0.0
        return self.instructions / self.clock


@dataclass
class SimulationResult:
    """Everything a run produced.

    The derived properties mirror the statistics the paper's simulator
    reports: miss rates, contention, utilisation, processing power.
    """

    protocol: str
    trace_name: str
    config: SimulationConfig
    cpus: list[CpuStats] = field(default_factory=list)
    operation_counts: Counter = field(default_factory=Counter)
    fetch_misses: int = 0
    data_misses: int = 0
    dirty_victim_misses: int = 0
    shared_loads: int = 0
    shared_stores: int = 0
    shared_data_misses: int = 0
    bus_busy_cycles: float = 0.0
    bus_transactions: int = 0
    protocol_stats: object | None = None

    # -- reference mix -----------------------------------------------------

    @property
    def instructions(self) -> int:
        return sum(cpu.instructions for cpu in self.cpus)

    @property
    def data_references(self) -> int:
        return sum(cpu.loads + cpu.stores for cpu in self.cpus)

    @property
    def shared_references(self) -> int:
        return self.shared_loads + self.shared_stores

    # -- miss rates ---------------------------------------------------------

    @property
    def total_misses(self) -> int:
        return self.fetch_misses + self.data_misses

    @property
    def instruction_miss_rate(self) -> float:
        """``mains``: instruction misses per instruction."""
        if self.instructions == 0:
            return 0.0
        return self.fetch_misses / self.instructions

    @property
    def data_miss_rate(self) -> float:
        """``msdat``: data misses per data reference.

        For the No-Cache protocol shared references bypass the cache,
        so this is per *cachable* data reference.
        """
        cachable = self.data_references
        if self.protocol == "nocache":
            cachable -= self.shared_references
        if cachable <= 0:
            return 0.0
        return self.data_misses / cachable

    @property
    def dirty_victim_fraction(self) -> float:
        """``md``: fraction of misses replacing a dirty block."""
        if self.total_misses == 0:
            return 0.0
        return self.dirty_victim_misses / self.total_misses

    # -- time ---------------------------------------------------------------

    @property
    def elapsed_cycles(self) -> float:
        return max((cpu.clock for cpu in self.cpus), default=0.0)

    @property
    def wait_cycles(self) -> float:
        return sum(cpu.wait_cycles for cpu in self.cpus)

    @property
    def wait_cycles_per_instruction(self) -> float:
        """Measured counterpart of the model's ``w``."""
        if self.instructions == 0:
            return 0.0
        return self.wait_cycles / self.instructions

    @property
    def cycles_per_instruction(self) -> float:
        """Measured counterpart of the model's ``c + w`` (per CPU mean)."""
        if self.instructions == 0:
            return 0.0
        return sum(cpu.clock for cpu in self.cpus) / self.instructions

    @property
    def utilization(self) -> float:
        """Mean per-processor utilisation."""
        if not self.cpus:
            return 0.0
        return sum(cpu.utilization for cpu in self.cpus) / len(self.cpus)

    @property
    def processing_power(self) -> float:
        """Sum of per-processor utilisations (the paper's metric)."""
        return sum(cpu.utilization for cpu in self.cpus)

    @property
    def bus_utilization(self) -> float:
        if self.elapsed_cycles == 0.0:
            return 0.0
        return min(self.bus_busy_cycles / self.elapsed_cycles, 1.0)


class Machine:
    """A simulated shared-bus multiprocessor.

    Args:
        protocol: protocol name (``base``, ``dragon``, ``nocache``,
            ``swflush``) or a :class:`Protocol` subclass.
        config: cache configuration.
        costs: operation cost table; defaults to the paper's Table 1.
    """

    def __init__(
        self,
        protocol: str | type[Protocol] = "base",
        config: SimulationConfig | None = None,
        costs: CostTable | None = None,
    ):
        if isinstance(protocol, str):
            self.protocol_class = protocol_class(protocol)
        else:
            self.protocol_class = protocol
        self.config = config if config is not None else SimulationConfig()
        self.costs = costs if costs is not None else CostTable.bus()

    def run(
        self,
        trace: Trace,
        cpus: int | None = None,
        order: str = "time",
    ) -> SimulationResult:
        """Replay a trace and return the accumulated statistics.

        Args:
            trace: the reference stream to replay.
            cpus: if given, restrict the trace to its first ``cpus``
                processors (the validation sweeps use this).
            order: ``"time"`` (default) merges the per-CPU streams by
                simulated clock, so bus grants happen in simulated-time
                order; ``"trace"`` replays records exactly in trace
                order, which lets drifted-ahead processors capture the
                bus "from the future" (the distortion the paper
                discusses in Section 3).  Per-CPU program order is
                preserved either way.
        """
        if order not in ("time", "trace"):
            raise ValueError(f"order must be 'time' or 'trace', got {order!r}")
        if cpus is not None and cpus != trace.cpus:
            trace = trace.restricted_to(cpus)

        geometry = self.config.geometry
        caches = [Cache(geometry) for _ in range(trace.cpus)]
        block_shift = geometry.block_shift
        shared_low = trace.shared_region.start >> block_shift
        shared_high = (
            trace.shared_region.stop + geometry.block_bytes - 1
        ) >> block_shift

        def is_shared_block(block: int) -> bool:
            return shared_low <= block < shared_high

        protocol = self.protocol_class(caches, is_shared_block)
        bus = TimedBus()
        result = SimulationResult(
            protocol=protocol.name,
            trace_name=trace.name,
            config=self.config,
            cpus=[CpuStats() for _ in range(trace.cpus)],
        )
        # Local bindings for the hot loop.
        cpu_cost = {op: cost.cpu_cycles for op, cost in self.costs.items()}
        bus_cost = {op: cost.channel_cycles for op, cost in self.costs.items()}
        stats = result.cpus
        op_counts = result.operation_counts
        handles_flush = protocol.handles_flush
        fetch = AccessType.INST_FETCH
        store = AccessType.STORE
        flush = AccessType.FLUSH

        def process(cpu: int, kind: AccessType, address: int) -> None:
            cpu_stats = stats[cpu]
            block = address >> block_shift
            if kind is flush:
                cpu_stats.flushes += 1
                if not handles_flush:
                    return
                outcome = protocol.flush(cpu, block)
            else:
                if kind is fetch:
                    cpu_stats.instructions += 1
                    cpu_stats.clock += 1.0
                else:
                    shared = is_shared_block(block)
                    if kind is store:
                        cpu_stats.stores += 1
                        if shared:
                            result.shared_stores += 1
                    else:
                        cpu_stats.loads += 1
                        if shared:
                            result.shared_loads += 1
                outcome = protocol.access(cpu, kind, block)

            for operation in outcome.operations:
                hold = bus_cost[operation]
                if hold > 0.0:
                    grant, wait = bus.transact(cpu_stats.clock, hold)
                    cpu_stats.clock = grant + cpu_cost[operation]
                    cpu_stats.wait_cycles += wait
                else:
                    cpu_stats.clock += cpu_cost[operation]
                op_counts[operation] += 1
                if operation in _MISS_OPERATIONS:
                    if kind is fetch:
                        result.fetch_misses += 1
                    else:
                        result.data_misses += 1
                        if is_shared_block(block):
                            result.shared_data_misses += 1
                    if operation in _DIRTY_VICTIM_OPERATIONS:
                        result.dirty_victim_misses += 1

            for victim_cpu in outcome.steal_from:
                stats[victim_cpu].clock += 1.0
                stats[victim_cpu].stolen_cycles += 1

        if order == "trace" or trace.cpus == 1:
            for cpu, kind, address in trace.records:
                process(cpu, kind, address)
        else:
            self._replay_time_ordered(trace, stats, process)

        result.bus_busy_cycles = bus.busy_cycles
        result.bus_transactions = bus.transactions
        result.protocol_stats = getattr(protocol, "stats", None)
        return result

    @staticmethod
    def _replay_time_ordered(trace: Trace, stats, process) -> None:
        """Feed records to ``process`` in simulated-time order.

        The per-CPU record streams are merged by each processor's
        current clock (a heap of ``(clock, cpu)``), so the next record
        handled always belongs to the processor that is earliest in
        simulated time.  Per-CPU program order is untouched.
        """
        streams: list[list] = [[] for _ in range(trace.cpus)]
        for record in trace.records:
            streams[record.cpu].append(record)
        positions = [0] * trace.cpus
        heap = [
            (0.0, cpu) for cpu in range(trace.cpus) if streams[cpu]
        ]
        heapq.heapify(heap)
        while heap:
            _, cpu = heapq.heappop(heap)
            _, kind, address = streams[cpu][positions[cpu]]
            positions[cpu] += 1
            process(cpu, kind, address)
            if positions[cpu] < len(streams[cpu]):
                heapq.heappush(heap, (stats[cpu].clock, cpu))
