"""Epoch-partitioned one-pass simulation for geometry-coupled protocols.

Dragon and WTI couple geometries through *sharing state*: what a miss
or store costs depends on which other caches hold the block, and
residency differs per cache size.  A cache-size sweep therefore
replayed the whole trace once per size.  This module lifts that
restriction by **epoch-partitioning** each CPU's stream at the
sharing-state-changing references and carrying only the sharer/owner
state of the *contended* blocks across epoch boundaries:

* **Dragon** (write-update): remote traffic never evicts
  (``remote_traffic_preserves_residency``), so residency and LRU
  order are functions of each CPU's own stream — classified per
  geometry by the :mod:`repro.sim.segment` kernel.  Only the
  *outcome labels* are coupled: whether a miss is supplied from a
  cache and whether a store hit broadcasts depend on the holders of
  the block, and holders can change only at **epoch boundaries** —
  misses (fills and evictions) and stores to contended blocks
  (broadcast state transitions).  Blocks referenced by a single CPU
  can never have remote holders, so their misses are pre-labelled
  vectorised; the merge carries a per-CPU map of contended-block
  line states (the sharer/owner columns) and resolves boundary
  events in the exact legacy replay order, including Dragon's
  cycle-steal key-staleness rules.
* **WTI** (write-through invalidate): invalidations remove lines,
  but only of contended blocks — so only the cache sets that ever
  hold a contended block in a CPU's own stream ("coupled sets") need
  simulating at the merge.  All other sets classify locally via the
  segment kernel; within coupled sets, references whose immediate
  same-set predecessor touched the same non-contended block are
  provable MRU-identity hits and skip the merge entirely.  Every
  store is an epoch boundary (each one posts a write-through).

Within an epoch every geometry sees identical sharer sets, which is
what makes per-geometry replays collapsible into per-geometry event
merges over one shared classification pass.  Statistics — including
``DragonStats``/``WtiStats`` and exact float clocks — are
bit-identical to per-config ``Machine.run`` (enforced by
``tests/sim/test_family.py``).

WTI's simulated-time merge is additionally **scan-formulated**
(:func:`_wti_scan_merge`): WTI never steals cycles, so every merge
key is a static function of the per-CPU fetch prefix sums, the event
outcomes, and the per-event bus waits.  The merge then collapses to a
small fixed point over pure array passes — reconstruct keys by
segmented cumulative sums, sort events globally by ``(key, cpu)``,
fold the bus recurrence ``grant[i] = max(ready[i], free[i-1]) + arb``
into an offset-subtracted running maximum, and repeat until the waits
(and the coupled-set outcome replay) stop changing.  A converged
fixed point is provably identical to the greedy dynamic merge, so the
statistics stay bit-identical; the demand gate
(:data:`_SCAN_DEMAND_GATE`) and non-convergence within
:data:`_SCAN_MERGE_CAP` passes fall back loudly to the *folded*
single-unpack merge (:func:`_wti_folded_merge`,
``engine="epoch"``, with a recorded ``scan:...`` fallback reason);
the PR 6 inlined reference loop stays selectable as
``wti_merge="loop"``.  Scan results carry ``engine="epoch-scan"``.
The scan pays off only off-saturation: each fixpoint pass resolves
one wait-dependency hop, so passes-to-converge tracks the
bus-conflict count, and in write-through WTI write sharing *is*
bus traffic (see ``benchmarks/bench_scan_merge.py`` for the
measured regime split).

Exactness has the same gates as the one-pass engine (integral costs,
and integral fcfs arbitration overhead — folded into every merge's
service term exactly as ``TimedBus`` does) plus the segment kernel's
associativity-1-or-2 bound; ``repro.sim.onepass.family_support``
routes anything else to the per-config fallback with a recorded
reason.
"""

from __future__ import annotations

import time
from collections import Counter

import numpy as np

from repro.core.operations import CostTable, Operation
from repro.obs.metrics import note_family_fallback, note_replay
from repro.sim.machine import (
    _DIRTY_VICTIM_OPERATIONS,
    _MISS_OPERATIONS,
    CpuStats,
    SimulationConfig,
    SimulationResult,
)
from repro.sim.protocols.dragon import DragonStats
from repro.sim.protocols.wti import WtiStats
from repro.sim.segment import classify_lru, dirty_flags, stream_positions
from repro.trace.derived import DerivedColumns, derived_columns
from repro.trace.records import Trace

__all__ = ["FAMILY_PROTOCOLS", "run_coupled_family"]

#: Geometry-coupled protocols the epoch engine handles.
FAMILY_PROTOCOLS = ("dragon", "wti")

# Contended-block line states carried across epochs (Dragon).  DIRTY
# and SHARED_DIRTY are odd so ``state & 1`` is the is-dirty/is-owner
# predicate.
_CLEAN = 0
_DIRTY = 1
_SHARED_CLEAN = 2
_SHARED_DIRTY = 3

_MISS_OP = {
    # (supplied_from_cache, dirty_victim) — mirror of dragon._MISS_OPERATION.
    (False, False): Operation.CLEAN_MISS_MEMORY,
    (False, True): Operation.DIRTY_MISS_MEMORY,
    (True, False): Operation.CLEAN_MISS_CACHE,
    (True, True): Operation.DIRTY_MISS_CACHE,
}

_WTI_OPS = (
    (Operation.CLEAN_MISS_MEMORY,),                           # miss
    (Operation.CLEAN_MISS_MEMORY, Operation.WRITE_THROUGH),   # store miss
    (Operation.WRITE_THROUGH,),                               # store hit
)

#: Maximum ``(keys, sort, grants)`` passes the WTI scan merge tries
#: before declaring no fixed point and falling back to the folded
#: sequential merge.  Low-contention traces converge in a handful of
#: passes; the cap (with the in-loop futility heuristic) bounds the
#: contention-driven cascades that would otherwise iterate once per
#: reordered event.
_SCAN_MERGE_CAP = 24

#: Estimated bus-demand fraction (optimistic busy cycles over the
#: no-wait span) above which the scan merge skips the fixed-point
#: passes entirely: measured cascades reorder only a few events per
#: pass once waits become steady, so a saturated bus can never settle
#: within :data:`_SCAN_MERGE_CAP`.
_SCAN_DEMAND_GATE = 0.15


def run_coupled_family(
    name: str,
    trace: Trace,
    configs: dict[int, SimulationConfig],
    costs: CostTable,
    order: str,
    wti_merge: str = "auto",
) -> dict[int, SimulationResult]:
    """One-pass cache-size sweep for a geometry-coupled protocol.

    Callers (``repro.sim.onepass.run_geometry_family``) have already
    validated the protocol, order, cost integrality, and geometry
    family.  ``wti_merge`` selects WTI's simulated-time merge:
    ``"auto"``/``"scan"`` try the vectorized scan formulation first
    (falling back loudly when it finds no fixed point), ``"loop"``
    forces the inlined reference loop — the equivalence suites compare
    the two byte-for-byte.
    """
    if wti_merge not in ("auto", "scan", "loop"):
        raise ValueError(
            f"wti_merge must be 'auto', 'scan', or 'loop', "
            f"got {wti_merge!r}"
        )
    started = time.perf_counter()
    block_shift = next(iter(configs.values())).geometry.block_shift
    derived = derived_columns(trace, block_shift)
    n = trace.cpus
    spos = stream_positions(derived)
    contended = _contended_blocks(derived, n)
    if len(contended):
        contended_sorted = np.isin(derived.blocks_sorted, contended)
    else:
        contended_sorted = np.zeros(len(derived.blocks_sorted), dtype=bool)
    if name == "dragon":
        results = {
            size: _run_dragon(
                trace, config, costs, order, derived, spos,
                contended, contended_sorted,
            )
            for size, config in configs.items()
        }
    else:
        results = {
            size: _run_wti(
                trace, config, costs, order, derived, spos,
                contended, contended_sorted, wti_merge,
            )
            for size, config in configs.items()
        }
    engines = {result.engine for result in results.values()}
    note_replay(len(trace), "epoch-scan" if engines == {"epoch-scan"} else "epoch")
    wall = time.perf_counter() - started
    for result in results.values():
        result.run_wall_s = wall
    return results


def _contended_blocks(derived: DerivedColumns, n: int) -> np.ndarray:
    """Blocks referenced by more than one CPU (uint64, sorted unique).

    Only these can ever have remote holders; everything else is
    provably private to its single referencing CPU.
    """
    pair = derived.blocks_sorted * np.uint64(n)
    pair += derived.cpus_sorted.astype(np.uint64)
    pair_blocks = np.unique(pair) // np.uint64(n)
    return np.unique(pair_blocks[1:][pair_blocks[1:] == pair_blocks[:-1]])


def _cpu_prefixes(derived: DerivedColumns, n: int) -> list[list[int]]:
    """Per-CPU fetch prefix sums (clock cost of an event-free epoch)."""
    prefixes = []
    for cpu in range(n):
        start = derived.offsets[cpu]
        stop = start + derived.counts[cpu]
        prefix_slice = derived.fetch_prefix[start : stop + 1]
        prefixes.append((prefix_slice - prefix_slice[0]).tolist())
    return prefixes


def _gather(array: np.ndarray, idx: np.ndarray) -> list:
    return array[idx].tolist()


# -- Dragon --------------------------------------------------------------


def _run_dragon(
    trace: Trace,
    config: SimulationConfig,
    costs: CostTable,
    order: str,
    derived: DerivedColumns,
    spos: np.ndarray,
    contended: np.ndarray,
    contended_sorted: np.ndarray,
) -> SimulationResult:
    n = trace.cpus
    geometry = config.geometry
    kinds = derived.kinds_sorted
    total = len(kinds)
    touches = kinds != 3  # Dragon ignores flushes entirely
    cls = classify_lru(derived, geometry.sets, geometry.associativity, touches)
    miss = cls.miss
    is_store = kinds == 2
    # Region-based, all kinds: DragonProtocol computes sharedness from
    # the block alone, so fetch misses on shared blocks count too.
    shared_sorted = derived.shared_sorted

    # Epoch boundaries: every miss (fills/evictions change holder
    # sets) plus every store to a contended block (may broadcast).
    ev_mask = miss | (is_store & contended_sorted & touches)

    # Store hits on non-contended blocks are provably exclusive: they
    # dirty the line locally and only bump the shared-write-hit
    # counter — countable vectorised, never epoch boundaries.
    untracked_write_hits = int(
        np.count_nonzero(
            is_store & touches & ~miss & ~contended_sorted & shared_sorted
        )
    )

    # Victim dirtiness: contended victims carry merge state; private
    # victims are dirty iff stored into while resident (they can only
    # ever be CLEAN/DIRTY — a SHARED fill needs holders).
    victim_block = cls.victim_block
    victim_dirty = np.zeros(total, dtype=bool)
    victim_contended = np.zeros(total, dtype=bool)
    v_idx = np.flatnonzero(victim_block >= 0)
    if len(v_idx):
        v_is_contended = np.isin(
            victim_block[v_idx].astype(np.uint64), contended
        )
        victim_contended[v_idx] = v_is_contended
        private = v_idx[~v_is_contended]
        if len(private):
            victim_dirty[private] = dirty_flags(
                derived,
                touches,
                spos,
                derived.cpus_sorted[private],
                victim_block[private],
                cls.victim_pos[private],
                spos[private],
            )

    offsets = derived.offsets
    counts = derived.counts
    epos: list[list[int]] = []
    ekind: list[list[int]] = []
    eblock: list[list[int]] = []
    emiss: list[list[bool]] = []
    eshared: list[list[bool]] = []
    etracked: list[list[bool]] = []
    evictim: list[list[int]] = []
    evictim_tracked: list[list[bool]] = []
    evictim_dirty: list[list[bool]] = []
    blocks_i64 = derived.blocks_sorted.astype(np.int64)
    for cpu in range(n):
        start = offsets[cpu]
        idx = np.flatnonzero(ev_mask[start : start + counts[cpu]]) + start
        epos.append((idx - start).tolist())
        ekind.append(_gather(kinds, idx))
        eblock.append(_gather(blocks_i64, idx))
        emiss.append(_gather(miss, idx))
        eshared.append(_gather(shared_sorted, idx))
        etracked.append(_gather(contended_sorted, idx))
        evictim.append(_gather(victim_block, idx))
        evictim_tracked.append(_gather(victim_contended, idx))
        evictim_dirty.append(_gather(victim_dirty, idx))

    # Sharer/owner state of contended blocks, per CPU, carried across
    # epoch boundaries.
    tstate: list[dict[int, int]] = [{} for _ in range(n)]
    stats = DragonStats()
    stats.shared_write_hits = untracked_write_hits
    cpu_range = range(n)
    write_broadcast = Operation.WRITE_BROADCAST

    def make_resolver(op_info):
        bcast = op_info[write_broadcast]
        miss_info = {key: (op_info[op],) for key, op in _MISS_OP.items()}
        miss_bcast_info = {
            key: (op_info[op], bcast) for key, op in _MISS_OP.items()
        }
        bcast_info = (bcast,)

        # Static pre-resolution: a miss on an untracked block with an
        # untracked victim can have no holders and touches no carried
        # state — its operations (and its shared-miss count) are fixed
        # before the merge, so the hot loop skips ``resolve`` for it.
        static_shared = 0
        estatic: list[list] = []
        for c in range(n):
            missed = emiss[c]
            tracked = etracked[c]
            vtracked = evictim_tracked[c]
            vdirty = evictim_dirty[c]
            shared_flags = eshared[c]
            row = []
            for i in range(len(missed)):
                if missed[i] and not tracked[i] and not vtracked[i]:
                    row.append(miss_info[False, vdirty[i]])
                    if shared_flags[i]:
                        static_shared += 1
                else:
                    row.append(None)
            estatic.append(row)
        stats.shared_misses += static_shared

        # Hot-loop tuning: common outcome pairs are preallocated and
        # captured names are bound as default arguments (locals, not
        # closure cells).
        empty_ret = ((), ())
        miss_ret = {key: (info, ()) for key, info in miss_info.items()}

        def resolve(
            cpu: int,
            i: int,
            eblock=eblock,
            eshared=eshared,
            emiss=emiss,
            etracked=etracked,
            evictim=evictim,
            evictim_tracked=evictim_tracked,
            evictim_dirty=evictim_dirty,
            ekind=ekind,
            tstate=tstate,
            stats=stats,
            cpu_range=cpu_range,
            miss_ret=miss_ret,
            miss_bcast_info=miss_bcast_info,
            bcast_info=bcast_info,
            empty_ret=empty_ret,
        ) -> tuple[tuple, tuple]:
            """Apply one epoch boundary's protocol actions (exact
            replica of ``DragonProtocol.access`` over the carried
            state)."""
            block = eblock[cpu][i]
            shared = eshared[cpu][i]
            if emiss[cpu][i]:
                holders: list[int] = []
                supplied = False
                if etracked[cpu][i]:
                    state = tstate
                    holders = [
                        j for j in cpu_range if j != cpu and block in state[j]
                    ]
                    owner = False
                    for j in holders:
                        if state[j][block] & 1:
                            owner = True
                            break
                    if shared:
                        stats.shared_misses += 1
                        if owner:
                            stats.shared_misses_dirty_elsewhere += 1
                    if holders:
                        supplied = owner
                        for j in holders:
                            holder_state = state[j][block]
                            if holder_state == _CLEAN:
                                state[j][block] = _SHARED_CLEAN
                            elif holder_state == _DIRTY:
                                state[j][block] = _SHARED_DIRTY
                        fill = _SHARED_CLEAN
                    else:
                        fill = _CLEAN
                elif shared:
                    stats.shared_misses += 1
                victim = evictim[cpu][i]
                if victim >= 0:
                    if evictim_tracked[cpu][i]:
                        dirty_victim = bool(tstate[cpu].pop(victim) & 1)
                    else:
                        dirty_victim = evictim_dirty[cpu][i]
                else:
                    dirty_victim = False
                if etracked[cpu][i]:
                    tstate[cpu][block] = fill
                if ekind[cpu][i] == 2:
                    if holders:
                        stats.broadcasts += 1
                        stats.broadcast_holders += len(holders)
                        tstate[cpu][block] = _SHARED_DIRTY
                        for j in holders:
                            tstate[j][block] = _SHARED_CLEAN
                        return (
                            miss_bcast_info[supplied, dirty_victim],
                            tuple(holders),
                        )
                    if etracked[cpu][i]:
                        tstate[cpu][block] = _DIRTY
                return miss_ret[supplied, dirty_victim]
            # Store hit on a contended block.
            state = tstate[cpu][block]
            if state == _CLEAN or state == _DIRTY:
                if shared:
                    stats.shared_write_hits += 1
                if state != _DIRTY:
                    tstate[cpu][block] = _DIRTY
                return empty_ret
            holders = [
                j for j in cpu_range if j != cpu and block in tstate[j]
            ]
            if shared:
                stats.shared_write_hits += 1
                if holders:
                    stats.shared_write_hits_present_elsewhere += 1
            if not holders:
                tstate[cpu][block] = _DIRTY
                return empty_ret
            stats.broadcasts += 1
            stats.broadcast_holders += len(holders)
            tstate[cpu][block] = _SHARED_DIRTY
            for j in holders:
                tstate[j][block] = _SHARED_CLEAN
            return (bcast_info, tuple(holders))

        return estatic, resolve

    return _merge_and_finish(
        "dragon", trace, config, costs, order, derived,
        epos, ekind, eshared, make_resolver, stats,
    )


# -- WTI -----------------------------------------------------------------


def _run_wti(
    trace: Trace,
    config: SimulationConfig,
    costs: CostTable,
    order: str,
    derived: DerivedColumns,
    spos: np.ndarray,
    contended: np.ndarray,
    contended_sorted: np.ndarray,
    wti_merge: str = "auto",
) -> SimulationResult:
    del spos  # WTI lines are never dirty; no interval queries needed
    n = trace.cpus
    geometry = config.geometry
    sets = geometry.sets
    assoc = geometry.associativity
    kinds = derived.kinds_sorted
    total = len(kinds)
    touches = kinds != 3  # WTI ignores flushes entirely
    is_store = kinds == 2
    shared_ev = derived.shared_sorted

    set_idx = (derived.blocks_sorted & np.uint64(sets - 1)).astype(np.int64)
    # Coupled sets: (cpu, set) pairs that ever hold a contended block
    # in the CPU's own stream.  Only these can see invalidations, so
    # only these need merge-time simulation.
    pair_key = derived.cpus_sorted.astype(np.int64) * sets + set_idx
    coupled_keys = np.unique(pair_key[contended_sorted & touches])
    if len(coupled_keys):
        coupled = np.isin(pair_key, coupled_keys)
    else:
        coupled = np.zeros(total, dtype=bool)

    cls = classify_lru(derived, sets, assoc, touches)
    # Uncoupled sets classify exactly locally; their events are the
    # misses plus every store (each posts a write-through).
    unc = touches & ~coupled
    # Within coupled sets, a reference whose immediate same-set
    # predecessor touched the same non-contended block is a provable
    # MRU-identity hit (invalidations only ever remove *other*,
    # contended lines, which cannot evict or demote this block).
    provable = cls.prev_same & ~is_store & ~contended_sorted
    ev_mask = (unc & (cls.miss | is_store)) | (touches & coupled & ~provable)

    # Event codes: 0 = miss, 1 = store miss, 2 = store hit (all
    # pre-resolved in uncoupled sets), 3 = resolve against the
    # simulated coupled set at the merge.
    code = np.full(total, 3, dtype=np.int64)
    unc_miss = unc & cls.miss
    code[unc_miss & ~is_store] = 0
    code[unc_miss & is_store] = 1
    code[unc & ~cls.miss & is_store] = 2

    if order != "trace" and n > 1 and wti_merge != "loop":
        # Folding an outcome's operation list into one grant update
        # (and hoisting the static wait terms out of the merge) reorders
        # float additions; that is only exact when every cost is an
        # integer, so the scan path refuses fractional cost tables.
        if all(
            float(cost.cpu_cycles).is_integer()
            and float(cost.channel_cycles).is_integer()
            for _op, cost in costs.items()
        ):
            return _wti_scan_merge(
                trace, config, costs, derived, sets, ev_mask, code,
                set_idx, shared_ev, contended_sorted, cls.prev_same,
                coupled_keys, assoc == 2,
            )
        note_family_fallback(
            "scan:non-integral operation costs cannot be folded "
            "exactly; inlined merge used"
        )

    offsets = derived.offsets
    counts = derived.counts
    epos: list[list[int]] = []
    ekind: list[list[int]] = []
    eblock: list[list[int]] = []
    eshared: list[list[bool]] = []
    ecode: list[list[int]] = []
    eset: list[list[int]] = []
    econtended: list[list[bool]] = []
    blocks_i64 = derived.blocks_sorted.astype(np.int64)
    for cpu in range(n):
        start = offsets[cpu]
        idx = np.flatnonzero(ev_mask[start : start + counts[cpu]]) + start
        epos.append((idx - start).tolist())
        ekind.append(_gather(kinds, idx))
        eblock.append(_gather(blocks_i64, idx))
        eshared.append(_gather(shared_ev, idx))
        ecode.append(_gather(code, idx))
        eset.append(_gather(set_idx, idx))
        econtended.append(_gather(contended_sorted, idx))

    # Simulated coupled sets.  ``family_support`` gates the engine to
    # associativity 1 or 2, so a set is at most two lines — modelled
    # as a fixed ``[mru, lru]`` list (-1 = empty way) instead of an
    # insertion-ordered dict: same LRU discipline, far cheaper per
    # touch in the merge loop.
    sim_sets: list[dict[int, list[int]]] = [{} for _ in range(n)]
    stats = WtiStats()
    cpu_range = range(n)
    two_way = assoc == 2

    def make_resolver(op_info):
        wti_info = tuple(
            tuple(op_info[op] for op in ops) for ops in _WTI_OPS
        )
        # Uncoupled-set events (codes 0-2) are fully classified before
        # the merge; only coupled-set events reach ``resolve``.
        estatic = [
            [wti_info[c] if c < 3 else None for c in ecode[cpu]]
            for cpu in range(n)
        ]

        # Hot-loop tuning: the four possible outcomes are preallocated
        # (no per-call tuple builds) and every captured name is bound
        # as a default argument (locals, not closure cells).
        hit_ret = ((), ())
        miss_ret = (wti_info[0], ())
        store_miss_ret = (wti_info[1], ())
        store_hit_ret = (wti_info[2], ())

        def resolve(
            cpu: int,
            i: int,
            eblock=eblock,
            eset=eset,
            ekind=ekind,
            econtended=econtended,
            sim_sets=sim_sets,
            stats=stats,
            cpu_range=cpu_range,
            two_way=two_way,
            hit_ret=hit_ret,
            miss_ret=miss_ret,
            store_miss_ret=store_miss_ret,
            store_hit_ret=store_hit_ret,
        ) -> tuple[tuple, tuple]:
            block = eblock[cpu][i]
            sid = eset[cpu][i]
            sets_c = sim_sets[cpu]
            sim = sets_c.get(sid)
            if sim is None:
                sim = [-1, -1]
                sets_c[sid] = sim
            if ekind[cpu][i] != 2:
                if block == sim[0]:
                    return hit_ret
                if two_way:
                    if block == sim[1]:
                        sim[1] = sim[0]
                        sim[0] = block
                        return hit_ret
                    sim[1] = sim[0]
                sim[0] = block
                return miss_ret
            # Store: the bus write invalidates every remote copy of a
            # contended block (non-contended blocks provably have none).
            if econtended[cpu][i]:
                for j in cpu_range:
                    if j == cpu:
                        continue
                    other = sim_sets[j].get(sid)
                    if other is not None:
                        if other[0] == block:
                            other[0] = other[1]
                            other[1] = -1
                            stats.invalidations += 1
                        elif other[1] == block:
                            other[1] = -1
                            stats.invalidations += 1
            if block == sim[0]:
                return store_hit_ret
            if two_way:
                if block == sim[1]:
                    sim[1] = sim[0]
                    sim[0] = block
                    return store_hit_ret
                sim[1] = sim[0]
            sim[0] = block
            return store_miss_ret

        return estatic, resolve

    if order == "trace" or n == 1:
        return _merge_and_finish(
            "wti", trace, config, costs, order, derived,
            epos, ekind, eshared, make_resolver, stats,
        )

    # Steal-free simulated-time merge, fully inlined.  WTI never
    # steals, so no broadcast ever perturbs another CPU's merge
    # position: every key and epoch advance is static.  Each event
    # carries its *outgoing* key gap (fetch cost to the next event, or
    # to end-of-stream), its block, and direct references to the
    # pre-created coupled-set lists it touches — the hot loop does no
    # function calls and no dict lookups, and the winning key IS the
    # post-epoch clock.
    op_info = _operation_info(costs)
    wti_info = tuple(tuple(op_info[op] for op in ops) for ops in _WTI_OPS)
    miss_ops, store_miss_ops, store_hit_ops = wti_info
    prefixes = _cpu_prefixes(derived, n)
    fetch_prefix = derived.fetch_prefix
    arb = float(config.bus_arbitration_cycles)
    # Every coupled (cpu, set) pair gets its [mru, lru] list up front
    # (an untouched [-1, -1] behaves exactly like a lazily absent one).
    sim_map = {int(key): [-1, -1] for key in coupled_keys.tolist()}
    bus_free = 0.0
    bus_busy = 0.0
    bus_tx = 0
    clocks = [0.0] * n
    waits = [0.0] * n
    fetch_misses = 0
    data_misses = 0
    shared_data_misses = 0
    dirty_victims = 0
    invalidations = 0
    infinity = float("inf")
    active = []
    keys = [0.0] * n
    event_index = [0] * n
    events = []
    for cpu in range(n):
        count = counts[cpu]
        row_pos = epos[cpu]
        if not count:
            events.append([])
            continue
        if not row_pos:
            clocks[cpu] = float(prefixes[cpu][count])
            events.append([])
            continue
        # Gap costs computed on the global fetch prefix directly
        # (differences cancel the per-CPU base).
        start = int(offsets[cpu])
        pos_np = np.asarray(row_pos, dtype=np.int64) + start
        nxt = np.empty(len(pos_np), dtype=np.int64)
        nxt[:-1] = fetch_prefix[pos_np[1:]]
        nxt[-1] = fetch_prefix[start + count]
        gaps = (nxt - fetch_prefix[pos_np + 1]).tolist()
        key_base = cpu * sets
        esim = [sim_map.get(key_base + sid) for sid in eset[cpu]]
        # Remote coupled-set lists a contended store must scan for
        # invalidations, resolved per set id once.
        others_cache: dict[int, tuple] = {}
        eothers: list = []
        for sid, cont, kind in zip(eset[cpu], econtended[cpu], ekind[cpu]):
            if kind == 2 and cont:
                remote = others_cache.get(sid)
                if remote is None:
                    lists = []
                    for j in cpu_range:
                        if j != cpu:
                            other = sim_map.get(j * sets + sid)
                            if other is not None:
                                lists.append(other)
                    remote = tuple(lists)
                    others_cache[sid] = remote
                eothers.append(remote)
            else:
                eothers.append(None)
        estat = [wti_info[c] if c < 3 else None for c in ecode[cpu]]
        events.append(
            list(
                zip(
                    ekind[cpu], eshared[cpu], estat, gaps,
                    eblock[cpu], esim, eothers,
                )
            )
        )
        keys[cpu] = float(prefixes[cpu][row_pos[0]])
        active.append(cpu)
    while active:
        best_key = infinity
        cpu = -1
        for candidate in active:
            key = keys[candidate]
            if key < best_key:
                best_key = key
                cpu = candidate
        i = event_index[cpu]
        row = events[cpu]
        kind, shared, operations, gap_out, block, sim, others = row[i]
        clock = best_key
        if kind == 0:
            clock += 1.0
        if operations is None:
            # Coupled-set LRU, associativity <= 2 (same discipline as
            # ``resolve`` above).
            if kind != 2:
                if block == sim[0]:
                    operations = ()
                elif two_way and block == sim[1]:
                    sim[1] = sim[0]
                    sim[0] = block
                    operations = ()
                else:
                    if two_way:
                        sim[1] = sim[0]
                    sim[0] = block
                    operations = miss_ops
            else:
                if others is not None:
                    for other in others:
                        if other[0] == block:
                            other[0] = other[1]
                            other[1] = -1
                            invalidations += 1
                        elif other[1] == block:
                            other[1] = -1
                            invalidations += 1
                if block == sim[0]:
                    operations = store_hit_ops
                elif two_way and block == sim[1]:
                    sim[1] = sim[0]
                    sim[0] = block
                    operations = store_hit_ops
                else:
                    if two_way:
                        sim[1] = sim[0]
                    sim[0] = block
                    operations = store_miss_ops
        if operations:
            for cpu_cycles, bus_cycles, is_miss, is_dirty, counter in (
                operations
            ):
                counter[0] += 1
                if bus_cycles > 0.0:
                    # TimedBus.transact inlined, arbitration overhead
                    # folded into the grant (identical arithmetic).
                    grant = bus_free if bus_free > clock else clock
                    if arb:
                        grant += arb
                    if grant > clock:
                        waits[cpu] += grant - clock
                    bus_free = grant + bus_cycles
                    bus_busy += bus_cycles
                    bus_tx += 1
                    clock = grant + cpu_cycles
                else:
                    clock += cpu_cycles
                if is_miss:
                    if kind == 0:
                        fetch_misses += 1
                    else:
                        data_misses += 1
                        if shared:
                            shared_data_misses += 1
                    if is_dirty:
                        dirty_victims += 1
        i += 1
        event_index[cpu] = i
        if i < len(row):
            keys[cpu] = clock + gap_out
        else:
            # End-of-stream advance folded into the last event: it has
            # no side effects, so its merge position relative to other
            # CPUs' events is immaterial.
            clocks[cpu] = clock + gap_out
            active.remove(cpu)
    stats.invalidations += invalidations
    return _assemble(
        "wti", trace, config, derived, op_info, clocks, waits, [0] * n,
        fetch_misses, data_misses, shared_data_misses, dirty_victims,
        bus_busy, bus_tx, arb * bus_tx, stats,
    )


# -- WTI scan merge ------------------------------------------------------


def _fold_outcome(op_rows: tuple, arb: float) -> tuple:
    """Fold one outcome's operation list into scan constants.

    All offsets are relative to the outcome's *first* bus grant ``G``
    (or to the event clock when no operation uses the bus): ``lead``
    is the cpu-only advance before the first bus operation,
    ``clock_adv``/``free_adv`` are the clock and bus-free offsets from
    ``G`` after every operation, and ``extra_wait`` is the wait the
    later (intra-outcome) bus operations accumulate.  An event's
    operations run back-to-back in the merge — no other CPU's event
    interleaves — so every later grant is a translation-invariant
    function of ``G`` and folds into constants exactly.
    """
    uses_bus = False
    lead = 0.0
    rel_clock = 0.0
    rel_free = 0.0
    extra_wait = 0.0
    busy = 0.0
    tx = 0
    for cpu_cycles, bus_cycles, _is_miss, _is_dirty, _cell in op_rows:
        if bus_cycles > 0.0:
            if uses_bus:
                grant = rel_free if rel_free > rel_clock else rel_clock
                grant += arb
                extra_wait += grant - rel_clock
                rel_free = grant + bus_cycles
                rel_clock = grant + cpu_cycles
            else:
                uses_bus = True
                rel_clock = cpu_cycles
                rel_free = bus_cycles
            busy += bus_cycles
            tx += 1
        elif uses_bus:
            rel_clock += cpu_cycles
        else:
            lead += cpu_cycles
    return uses_bus, lead, rel_clock, rel_free, extra_wait, busy, tx


def _replay_coupled(
    cl_cpu: list,
    cl_set: list,
    cl_block: list,
    cl_store: list,
    cl_cont: list,
    cl_resolve: list,
    coupled_key_ints: list,
    sets: int,
    two_way: bool,
    n: int,
) -> tuple[list[int], int]:
    """Replay the coupled-set events in the given merge order.

    Same LRU/invalidation discipline as ``_run_wti``'s inlined merge
    (``[mru, lru]`` lists, associativity <= 2).  Entries whose
    ``resolve`` flag is False are associativity-1 locally-resolved
    misses: their outcome is already known, so they only restate the
    set's single way (``sim[0] = block``).  Returns the outcome id per
    resolved event (0 = miss, 1 = store miss, 2 = store hit, 3 = hit)
    and the invalidation count.
    """
    sim_map = {key: [-1, -1] for key in coupled_key_ints}
    out: list[int] = []
    append = out.append
    invalidations = 0
    for cpu, sid, block, store, cont, resolve in zip(
        cl_cpu, cl_set, cl_block, cl_store, cl_cont, cl_resolve
    ):
        sim = sim_map[cpu * sets + sid]
        if not resolve:
            sim[0] = block
            continue
        if not store:
            if block == sim[0]:
                append(3)
            elif two_way and block == sim[1]:
                sim[1] = sim[0]
                sim[0] = block
                append(3)
            else:
                if two_way:
                    sim[1] = sim[0]
                sim[0] = block
                append(0)
            continue
        if cont:
            for j in range(n):
                if j == cpu:
                    continue
                other = sim_map.get(j * sets + sid)
                if other is not None:
                    if other[0] == block:
                        other[0] = other[1]
                        other[1] = -1
                        invalidations += 1
                    elif other[1] == block:
                        other[1] = -1
                        invalidations += 1
        if block == sim[0]:
            append(2)
        elif two_way and block == sim[1]:
            sim[1] = sim[0]
            sim[0] = block
            append(2)
        else:
            if two_way:
                sim[1] = sim[0]
            sim[0] = block
            append(1)
    return out, invalidations


def _wti_scan_merge(
    trace: Trace,
    config: SimulationConfig,
    costs: CostTable,
    derived: DerivedColumns,
    sets: int,
    ev_mask: np.ndarray,
    code: np.ndarray,
    set_idx: np.ndarray,
    shared_sorted: np.ndarray,
    contended_sorted: np.ndarray,
    prev_same: np.ndarray,
    coupled_keys: np.ndarray,
    two_way: bool,
) -> SimulationResult:
    """WTI simulated-time merge as a pure-numpy fixed point.

    WTI never steals, so an event's merge key is its CPU's clock —
    fetch prefix plus the outcome advances and bus waits of the CPU's
    earlier events.  Iterate on the per-event waits ``w``: each pass
    reconstructs every key exactly (segmented cumulative sums of the
    per-event advances), sorts events globally by ``(key, cpu)``,
    replays the coupled-set outcomes in that order when it changed,
    and computes the exact grants of the fcfs bus recurrence
    ``grant[b] = max(ready[b], free[b-1]) + arb`` via an
    offset-subtracted running maximum.  A pass whose waits and
    outcomes both reproduce themselves is a self-consistent fixed
    point, and the fixed point is unique: two self-consistent
    schedules with a first differing merge position would have
    identical prefixes, hence identical per-CPU head keys and an
    identical ``(key, cpu)``-minimal winner at that position.  Keys
    are per-CPU monotone by construction (every advance is
    non-negative), so the ``(key, cpu)`` sort equals the greedy
    dynamic merge order and all statistics are bit-identical to the
    inlined reference loop.  Saturated buses cascade waits pass to
    pass faster than sorting can catch up, so a frontier-progress
    heuristic bails out of hopeless iterations (recorded via
    :func:`note_family_fallback`) into :func:`_wti_folded_merge`,
    the sequential residue with the same folded arithmetic.
    """
    n = trace.cpus
    arb = float(config.bus_arbitration_cycles)
    op_info = _operation_info(costs)
    wti_rows = tuple(
        tuple(op_info[op] for op in ops) for ops in _WTI_OPS
    )
    all_rows = wti_rows + ((),)

    kinds = derived.kinds_sorted
    offsets = np.asarray(derived.offsets, dtype=np.int64)
    counts = np.asarray(derived.counts, dtype=np.int64)
    fetch_prefix = derived.fetch_prefix
    ends = offsets + counts
    base = fetch_prefix[offsets]
    totals = (fetch_prefix[ends] - base).astype(np.float64)

    g_idx = np.flatnonzero(ev_mask)
    e_total = len(g_idx)

    stats = WtiStats()
    if not e_total:
        result = _assemble(
            "wti", trace, config, derived, op_info, totals.tolist(),
            [0.0] * n, [0] * n, 0, 0, 0, 0, 0.0, 0, 0.0, stats,
        )
        result.engine = "epoch-scan"
        return result

    # Per-outcome scan constants (0 = miss, 1 = store miss, 2 = store
    # hit, 3 = hit).
    folds = [_fold_outcome(rows, arb) for rows in all_rows]
    uses_bus = np.asarray([f[0] for f in folds], dtype=bool)
    lead = np.asarray([f[1] for f in folds])
    clock_adv = np.asarray([f[2] for f in folds])
    free_adv = np.asarray([f[3] for f in folds])
    extra_wait = np.asarray([f[4] for f in folds])
    busy_adv = np.asarray([f[5] for f in folds])
    tx_adv = np.asarray([f[6] for f in folds], dtype=np.int64)
    miss_ops = np.asarray(
        [sum(1 for row in rows if row[2]) for rows in all_rows],
        dtype=np.int64,
    )
    dirty_ops = np.asarray(
        [sum(1 for row in rows if row[2] and row[3]) for rows in all_rows],
        dtype=np.int64,
    )

    # Event columns, CPU-major (g_idx is sorted-record order).
    ev_cpu = derived.cpus_sorted[g_idx].astype(np.int64)
    ev_kind = kinds[g_idx]
    ev_block = derived.blocks_sorted[g_idx].astype(np.int64)
    ev_set = set_idx[g_idx]
    ev_shared = shared_sorted[g_idx]
    ev_cont = contended_sorted[g_idx]
    ev_store = ev_kind == 2
    ev_pre = (ev_kind == 0).astype(np.float64)
    coupled_ev = code[g_idx] == 3
    outcome = code[g_idx].copy()
    prev_same_ev = prev_same[g_idx]

    # Scan-side classification refinements (the retained reference
    # loop keeps the original classification untouched; outcomes are
    # provably equal, which the equivalence suites enforce).
    #
    # Any associativity: a store in a coupled set whose immediate
    # same-set predecessor touched the same non-contended block is a
    # provable store hit — the predecessor left the block MRU,
    # invalidations only ever remove *other*, contended lines, its
    # write-through invalidates no remote copy, and re-marking an MRU
    # block changes no LRU state.  Pre-resolved, no sim participation.
    prov_store = coupled_ev & ev_store & prev_same_ev & ~ev_cont
    outcome = np.where(prov_store, 2, outcome)
    # Associativity 1 only: invalidations remove only contended
    # blocks and a one-way set is overwritten by every touch, so
    # every remaining non-contended event resolves locally — hit iff
    # its previous same-set touch was the same block, which
    # ``prov_store`` and the pre-excluded provable load hits already
    # cover; everything left is a miss.  Only the contended touches
    # still need the merge order; the locally-resolved misses merely
    # restate the set's single way (``state_upd``).
    if not two_way:
        noncont = coupled_ev & ~ev_cont & ~prov_store
        outcome = np.where(
            noncont, np.where(ev_store, 1, 0), outcome
        )
        state_upd = noncont
        resolve_ev = coupled_ev & ev_cont
    else:
        state_upd = np.zeros(e_total, dtype=bool)
        resolve_ev = coupled_ev & ~prov_store
    replay_ev = resolve_ev | state_upd

    ev_counts = np.bincount(ev_cpu, minlength=n)
    ev_offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(ev_counts, out=ev_offsets[1:])
    starts = ev_offsets[:-1]
    has_ev = ev_counts > 0
    last_of = ev_offsets[1:] - 1

    # Outgoing fetch-prefix gap per event (cost to the CPU's next
    # event, or to end-of-stream for its last), and the first key.
    nxt = np.empty(e_total, dtype=np.int64)
    nxt[:-1] = fetch_prefix[g_idx[1:]]
    nxt[last_of[has_ev]] = fetch_prefix[ends[has_ev]]
    gap = (nxt - fetch_prefix[g_idx + 1]).astype(np.float64)
    fk = np.zeros(n)
    fk[has_ev] = (
        fetch_prefix[g_idx[starts[has_ev]]] - base[has_ev]
    ).astype(np.float64)

    any_replay = bool(replay_ev.any())
    coupled_key_ints = coupled_keys.tolist()
    prev_sel: np.ndarray | None = None
    invalidations = 0
    static_code = outcome.copy()
    start_excl = np.zeros(n)
    converged = False
    fallback_reason: str | None = None

    # A-priori bus-demand gate.  The fixed point converges only when
    # bus waits are almost absent: any steady contention cascades one
    # reordering per pass, so passes grow with trace length (measured
    # on the paper presets, whose write-through traffic saturates the
    # bus).  Estimate demand optimistically (unresolved contended
    # touches as hits/store hits) — if even that saturates, skip
    # straight to the folded sequential merge.
    optimistic = outcome.copy()
    optimistic[resolve_ev & ~ev_store] = 3
    optimistic[resolve_ev & ev_store] = 2
    span = float(totals.max())
    demand = (
        float(np.dot(busy_adv + arb * tx_adv, np.bincount(optimistic, minlength=4)))
        / span
        if span > 0.0
        else 0.0
    )
    if demand > _SCAN_DEMAND_GATE:
        fallback_reason = (
            f"scan:estimated bus demand {demand:.2f} saturates the fcfs "
            "bus and defeats the fixed point; folded merge used"
        )
    else:
        w = np.where(uses_bus[outcome], arb, 0.0)
        q_max = 0
        for passes in range(1, _SCAN_MERGE_CAP + 1):
            adv = ev_pre + lead[outcome] + clock_adv[outcome] + w + gap
            cum = np.cumsum(adv)
            excl = cum - adv
            start_excl[has_ev] = excl[starts[has_ev]]
            keys = fk[ev_cpu] + (excl - start_excl[ev_cpu])
            order_idx = np.lexsort((ev_cpu, keys))
            stale = False
            stale_pos = e_total
            if any_replay:
                sel = order_idx[replay_ev[order_idx]]
                if prev_sel is None or not np.array_equal(sel, prev_sel):
                    prev_sel = sel
                    res_mask = resolve_ev[sel]
                    resolved, invalidations = _replay_coupled(
                        ev_cpu[sel].tolist(),
                        ev_set[sel].tolist(),
                        ev_block[sel].tolist(),
                        ev_store[sel].tolist(),
                        ev_cont[sel].tolist(),
                        res_mask.tolist(),
                        coupled_key_ints,
                        sets,
                        two_way,
                        n,
                    )
                    resolved = np.asarray(resolved, dtype=np.int64)
                    targets = sel[res_mask]
                    changed_out = outcome[targets] != resolved
                    stale = bool(changed_out.any())
                    if stale:
                        positions = np.flatnonzero(resolve_ev[order_idx])
                        stale_pos = int(positions[np.argmax(changed_out)])
                    outcome[targets] = resolved
            out_s = outcome[order_idx]
            b = np.flatnonzero(uses_bus[out_s])
            ready = keys[order_idx] + ev_pre[order_idx] + lead[out_s]
            w_new = np.zeros(e_total)
            if len(b):
                ready_b = ready[b]
                shift = np.zeros(len(b))
                if len(b) > 1:
                    np.cumsum(free_adv[out_s[b[:-1]]] + arb, out=shift[1:])
                grants = arb + shift + np.maximum.accumulate(ready_b - shift)
                w_new[order_idx[b]] = grants - ready_b
            if not stale and np.array_equal(w_new, w):
                converged = True
                break
            # Futility heuristic: the merged prefix before the first
            # changed wait (or stale outcome) is final, so the
            # frontier position only ever grows.  When its best-so-far
            # trails a linear march to ``e_total`` within the pass
            # budget, the cascade is contention-bound and iterating
            # further would cost more than the folded merge below.
            changed = (w_new != w)[order_idx]
            q = int(np.argmax(changed)) if changed.any() else e_total
            if stale_pos < q:
                q = stale_pos
            if q > q_max:
                q_max = q
            if (
                passes >= 2
                and q_max * (_SCAN_MERGE_CAP - 1) < e_total * (passes - 1)
            ):
                break
            w = w_new
        if not converged:
            fallback_reason = (
                "scan:wti merge found no fixed point within "
                f"{_SCAN_MERGE_CAP} sort passes; folded merge used"
            )

    if converged:
        waits = np.zeros(n)
        if len(b):
            waits = np.bincount(
                ev_cpu[order_idx[b]],
                weights=grants - ready_b + extra_wait[out_s[b]],
                minlength=n,
            )
        clocks = totals.copy()
        lasts = last_of[has_ev]
        clocks[has_ev] = keys[lasts] + adv[lasts]
        engine = "epoch-scan"
    else:
        note_family_fallback(fallback_reason or "scan:no fixed point")
        outcome, waits, clocks, invalidations = _wti_folded_merge(
            n, sets, arb, two_way, totals, static_code, resolve_ev,
            replay_ev, ev_cpu, ev_set, ev_block, ev_store, ev_cont,
            ev_pre, gap, fk, starts, ev_offsets, uses_bus, lead,
            clock_adv, free_adv, extra_wait, coupled_key_ints,
        )
        engine = "epoch"

    # Segmented reductions: the merged per-event outcomes are the
    # reference loop's exact values, so every statistic is a sum over
    # them.
    counts_by_outcome = np.bincount(outcome, minlength=4)
    for oc, rows in enumerate(wti_rows):
        cnt = int(counts_by_outcome[oc])
        if cnt:
            for row in rows:
                row[4][0] += cnt
    bus_busy = float(np.dot(busy_adv, counts_by_outcome))
    bus_tx = int(np.dot(tx_adv, counts_by_outcome))
    mc = miss_ops[outcome]
    is_fetch_ev = ev_kind == 0
    fetch_misses = int(mc[is_fetch_ev].sum())
    data_misses = int(mc[~is_fetch_ev].sum())
    shared_data_misses = int(mc[~is_fetch_ev & ev_shared].sum())
    dirty_victims = int(dirty_ops[outcome].sum())
    stats.invalidations += invalidations
    result = _assemble(
        "wti", trace, config, derived, op_info, clocks.tolist(),
        waits.tolist(), [0] * n, fetch_misses, data_misses,
        shared_data_misses, dirty_victims, bus_busy, bus_tx,
        arb * bus_tx, stats,
    )
    result.engine = engine
    return result


def _wti_folded_merge(
    n: int,
    sets: int,
    arb: float,
    two_way: bool,
    totals: np.ndarray,
    scode: np.ndarray,
    resolve_ev: np.ndarray,
    replay_ev: np.ndarray,
    ev_cpu: np.ndarray,
    ev_set: np.ndarray,
    ev_block: np.ndarray,
    ev_store: np.ndarray,
    ev_cont: np.ndarray,
    ev_pre: np.ndarray,
    gap: np.ndarray,
    fk: np.ndarray,
    starts: np.ndarray,
    ev_offsets: np.ndarray,
    uses_bus: np.ndarray,
    lead: np.ndarray,
    clock_adv: np.ndarray,
    free_adv: np.ndarray,
    extra_wait: np.ndarray,
    coupled_key_ints: list[int],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Folded sequential residue of the WTI simulated-time merge.

    Same greedy dynamic merge as the inlined reference loop — the
    next event is always the globally earliest ready CPU (lowest CPU
    on ties), and unresolved touches are resolved at pick time against
    the shared coupled sets, so the result is bit-identical by
    construction.  Three structural folds carry the speedup:

    - every outcome's operation list is pre-folded
      (:func:`_fold_outcome`) into one bus-grant update, and all
      counting, miss attribution, and static wait terms are hoisted
      into the caller's numpy reductions;
    - the per-pick CPU argmin runs on a binary heap keyed by
      ``(ready_key, cpu)`` with exactly one entry per CPU, replacing
      the linear scan;
    - events whose outcome the caller pre-resolved (uncoupled events,
      plus — for one-way sets — the non-contended coupled touches)
      take a straight-line branch that at most restates the set's
      single way.

    Event records are uniform six-tuples ``(flag, a, b, c, sim,
    block)``: flag 0 is a pre-resolved bus event (``a`` = ready
    offset, ``b`` = clock advance incl. outgoing gap, ``c`` = bus-free
    advance, ``sim`` truthy when the one-way set must be restated to
    ``block``); flag 3 is the same without a bus transaction; flags 1
    (load) and 2 (store, ``a`` = peer-set tuple for invalidation) are
    resolved at pick time and write their outcome at trace slot ``c``.
    Returns ``(outcome, waits, clocks, invalidations)``.
    """
    e_total = len(scode)
    scode_safe = np.where(scode == 3, 0, scode)
    flags = np.where(uses_bus[scode_safe], 0, 3)
    flags[resolve_ev & ~ev_store] = 1
    flags[resolve_ev & ev_store] = 2

    # Fold the fcfs arbitration overhead into the per-outcome clock
    # and bus-free advances of the bus events so the hot loop carries
    # no ``arb`` branch, and drop wait accounting from the loop
    # entirely: with integral costs every quantity is an exact
    # integer-valued float, so per-CPU waits telescope to the merged
    # clock minus the static no-wait clock (recovered vectorised
    # below).
    arb_term = np.where(flags == 0, arb, 0.0)
    a_col = np.where(resolve_ev, ev_pre, ev_pre + lead[scode_safe])
    b_col = np.where(resolve_ev, gap, clock_adv[scode_safe] + gap) + arb_term
    flag_l = flags.tolist()
    a_l = a_col.tolist()
    b_l = b_col.tolist()
    c_l = (free_adv[scode_safe] + arb_term).tolist()
    d_l: list = [0] * e_total
    e_l = np.where(replay_ev, ev_block, 0).tolist()

    # Shared coupled-set state, spliced into the replayed slots by
    # sorted rank (``coupled_key_ints`` is sorted-unique).
    sim_map = {key: [-1, -1] for key in coupled_key_ints}
    sims_by_rank = [sim_map[key] for key in coupled_key_ints]
    pos = np.flatnonzero(replay_ev)
    if len(pos):
        rank = np.searchsorted(
            np.asarray(coupled_key_ints, dtype=np.int64),
            ev_cpu[pos] * sets + ev_set[pos],
        )
        for p, r in zip(pos.tolist(), rank.tolist()):
            d_l[p] = sims_by_rank[r]
    resolve_pos = np.flatnonzero(resolve_ev).tolist()
    for p in resolve_pos:
        c_l[p] = p
    store_pos = np.flatnonzero(flags == 2)
    if len(store_pos):
        rem_cache: dict[int, tuple] = {}
        for p, cpu_p, sid, cont_p in zip(
            store_pos.tolist(),
            ev_cpu[store_pos].tolist(),
            ev_set[store_pos].tolist(),
            ev_cont[store_pos].tolist(),
        ):
            if not cont_p:
                a_l[p] = ()
                continue
            ck = cpu_p * sets + sid
            rem = rem_cache.get(ck)
            if rem is None:
                rem = tuple(
                    sim_map[other * sets + sid]
                    for other in range(n)
                    if other != cpu_p and other * sets + sid in sim_map
                )
                rem_cache[ck] = rem
            a_l[p] = rem

    ub0, ub1, ub2, _ = uses_bus.tolist()
    lead0, lead1, lead2, lead3 = lead.tolist()
    adv0, adv1, adv2, adv3 = clock_adv.tolist()
    fr0, fr1, fr2, _ = free_adv.tolist()
    hit_tot = lead3 + adv3
    adv0a = adv0 + arb
    adv1a = adv1 + arb
    adv2a = adv2 + arb
    fr0a = fr0 + arb
    fr1a = fr1 + arb
    fr2a = fr2 + arb

    clocks_l = totals.tolist()
    rows_by_cpu: list = [None] * n
    keys_l = [0.0] * n
    eidx = [0] * n
    nrows = [0] * n
    active: list[int] = []
    for cpu in range(n):
        s = int(starts[cpu])
        e = int(ev_offsets[cpu + 1])
        if s == e:
            continue
        rows_by_cpu[cpu] = list(
            zip(
                flag_l[s:e], a_l[s:e], b_l[s:e],
                c_l[s:e], d_l[s:e], e_l[s:e],
            )
        )
        nrows[cpu] = e - s
        keys_l[cpu] = float(fk[cpu])
        active.append(cpu)

    out_flat = scode.tolist()
    bus_free = 0.0
    invalidations = 0
    infinity = float("inf")
    while active:
        # Linear argmin with second-best tracking: n is tiny, and the
        # second-best key bounds how far the winner may drain its own
        # stream before any other CPU can interleave (strict ``<`` and
        # ascending scan reproduce the lowest-CPU tie-break).
        best = infinity
        second = infinity
        cpu = -1
        scpu = -1
        for cand in active:
            k = keys_l[cand]
            if k < best:
                second = best
                scpu = cpu
                best = k
                cpu = cand
            elif k < second:
                second = k
                scpu = cand
        row = rows_by_cpu[cpu]
        i = eidx[cpu]
        limit = nrows[cpu]
        key = best
        while True:
            flag, a_f, b_f, c_f, sim, block = row[i]
            if flag == 0:
                # Pre-resolved bus event: one folded grant (arb is
                # pre-added to the advances); restate the one-way set
                # when the caller resolved a coupled miss.
                ready = key + a_f
                grant = bus_free if bus_free > ready else ready
                bus_free = grant + c_f
                next_key = grant + b_f
                if sim:
                    sim[0] = block
            elif flag == 3:
                # Pre-resolved event with no bus transaction.
                next_key = key + a_f + b_f
                if sim:
                    sim[0] = block
            elif flag == 1:
                pre = a_f
                gap_out = b_f
                j = c_f
                if block == sim[0]:
                    outcome_id = 3
                elif two_way and block == sim[1]:
                    sim[1] = sim[0]
                    sim[0] = block
                    outcome_id = 3
                else:
                    if two_way:
                        sim[1] = sim[0]
                    sim[0] = block
                    outcome_id = 0
                out_flat[j] = outcome_id
                if outcome_id == 3:
                    next_key = key + pre + hit_tot + gap_out
                elif ub0:
                    ready = key + pre + lead0
                    grant = bus_free if bus_free > ready else ready
                    bus_free = grant + fr0a
                    next_key = grant + adv0a + gap_out
                else:
                    next_key = key + pre + lead0 + adv0 + gap_out
            else:
                rem = a_f
                gap_out = b_f
                j = c_f
                for other in rem:
                    if other[0] == block:
                        other[0] = other[1]
                        other[1] = -1
                        invalidations += 1
                    elif other[1] == block:
                        other[1] = -1
                        invalidations += 1
                if block == sim[0]:
                    outcome_id = 2
                elif two_way and block == sim[1]:
                    sim[1] = sim[0]
                    sim[0] = block
                    outcome_id = 2
                else:
                    if two_way:
                        sim[1] = sim[0]
                    sim[0] = block
                    outcome_id = 1
                out_flat[j] = outcome_id
                if outcome_id == 2:
                    if ub2:
                        ready = key + lead2
                        grant = bus_free if bus_free > ready else ready
                        bus_free = grant + fr2a
                        next_key = grant + adv2a + gap_out
                    else:
                        next_key = key + lead2 + adv2 + gap_out
                elif ub1:
                    ready = key + lead1
                    grant = bus_free if bus_free > ready else ready
                    bus_free = grant + fr1a
                    next_key = grant + adv1a + gap_out
                else:
                    next_key = key + lead1 + adv1 + gap_out
            i += 1
            if i == limit:
                clocks_l[cpu] = next_key
                active.remove(cpu)
                break
            if next_key < second or (next_key == second and cpu < scpu):
                key = next_key
                continue
            keys_l[cpu] = next_key
            eidx[cpu] = i
            break

    outcome = np.asarray(out_flat, dtype=np.int64)
    # Waits telescope: every event advances its CPU's key by its
    # static no-wait cost plus its (non-negative) bus wait, so the
    # per-CPU wait total is the merged final clock minus the static
    # no-wait clock.  Exact because the integral-cost gate makes all
    # terms integer-valued floats.
    static_adv = ev_pre + lead[outcome] + clock_adv[outcome] + gap
    nowait = totals.copy()
    hase = (ev_offsets[1:] - starts) > 0
    nowait[hase] = (
        fk[hase]
        + np.bincount(ev_cpu, weights=static_adv, minlength=n)[hase]
    )
    waits = (
        np.asarray(clocks_l)
        - nowait
        + np.bincount(ev_cpu, weights=extra_wait[outcome], minlength=n)
    )
    return outcome, waits, np.asarray(clocks_l), invalidations


# -- shared event merge + result assembly --------------------------------


def _operation_info(costs: CostTable) -> dict:
    """Per-operation hot-loop info tuples: ``(cpu_cycles, bus_cycles,
    is_miss, is_dirty_victim, count_cell)``.  The mutable count cell
    keeps operation counting in one place across static and resolved
    events."""
    return {
        op: (
            float(cost.cpu_cycles),
            float(cost.channel_cycles),
            op in _MISS_OPERATIONS,
            op in _DIRTY_VICTIM_OPERATIONS,
            [0],
        )
        for op, cost in costs.items()
    }


def _assemble(
    name: str,
    trace: Trace,
    config: SimulationConfig,
    derived: DerivedColumns,
    op_info: dict,
    clocks: list[float],
    waits: list[float],
    steals: list[int],
    fetch_misses: int,
    data_misses: int,
    shared_data_misses: int,
    dirty_victims: int,
    bus_busy: float,
    bus_tx: int,
    bus_arb: float,
    protocol_stats,
) -> SimulationResult:
    n = trace.cpus
    result = SimulationResult(
        protocol=name,
        trace_name=trace.name,
        config=config,
        cpus=[CpuStats() for _ in range(n)],
    )
    mix = derived.mix
    for cpu in range(n):
        stats = result.cpus[cpu]
        stats.instructions = int(mix[cpu, 0])
        stats.loads = int(mix[cpu, 1])
        stats.stores = int(mix[cpu, 2])
        stats.flushes = int(mix[cpu, 3])
        stats.clock = clocks[cpu]
        stats.wait_cycles = waits[cpu]
        stats.stolen_cycles = steals[cpu]
    result.operation_counts = Counter(
        {op: info[4][0] for op, info in op_info.items() if info[4][0]}
    )
    result.fetch_misses = fetch_misses
    result.data_misses = data_misses
    result.shared_data_misses = shared_data_misses
    result.dirty_victim_misses = dirty_victims
    result.shared_loads = derived.shared_loads
    result.shared_stores = derived.shared_stores
    result.bus_busy_cycles = bus_busy
    result.bus_transactions = bus_tx
    result.bus_arbitration_cycles = bus_arb
    result.protocol_stats = protocol_stats
    result.engine = "epoch"
    result.records_replayed = len(trace)
    return result


def _merge_and_finish(
    name: str,
    trace: Trace,
    config: SimulationConfig,
    costs: CostTable,
    order: str,
    derived: DerivedColumns,
    epos: list[list[int]],
    ekind: list[list[int]],
    eshared: list[list[bool]],
    make_resolver,
    protocol_stats,
) -> SimulationResult:
    """Replay epoch boundaries in exact legacy ``(key, cpu)`` order.

    The structure mirrors ``onepass._account`` (event-free epochs
    advance clocks via fetch prefix sums) extended with per-event
    resolution and — for Dragon — the cycle-steal key-staleness rules
    of ``Machine._run_columnar``'s event-driven merge, minus the
    deferred LRU touches (every epoch record here is free apart from
    its fetch cycle, so epochs are pure clock advances).

    ``make_resolver(op_info)`` returns ``(estatic, resolve)``:
    ``estatic[cpu][i]`` is the event's pre-resolved cost-info tuple
    when its operations are independent of the carried sharing state
    (the hot loop consumes it directly), or None to route the event
    through ``resolve`` — which returns ``(info_tuple, stolen_from)``
    built from the same ``op_info`` entries, so operation counting
    stays in one place.

    WTI's steal-free simulated-time merge does not come through here —
    ``_run_wti`` inlines it — so the time branch below always carries
    the steal machinery.
    """
    n = trace.cpus
    counts = derived.counts
    prefixes = _cpu_prefixes(derived, n)
    op_info = _operation_info(costs)
    arb = float(config.bus_arbitration_cycles)
    estatic, resolve = make_resolver(op_info)

    # One tuple per event — a single list index in the hot loop
    # instead of four parallel-column lookups.
    def pack_events():
        return [
            list(zip(epos[c], ekind[c], eshared[c], estatic[c]))
            for c in range(n)
        ]

    # TimedBus.transact inlined into the merge loops as three locals
    # (identical arithmetic; the result assembly rebuilds the totals).
    bus_free = 0.0
    bus_busy = 0.0
    bus_tx = 0
    clocks = [0.0] * n
    waits = [0.0] * n
    steals = [0] * n
    fetch_misses = 0
    data_misses = 0
    shared_data_misses = 0
    dirty_victims = 0

    if order == "trace" or n == 1:
        events = pack_events()
        order_np = derived.order
        offsets = derived.offsets
        ev_trace = []
        ev_cpu = []
        for cpu in range(n):
            pos_np = np.asarray(epos[cpu], dtype=np.int64)
            ev_trace.append(order_np[offsets[cpu] + pos_np])
            ev_cpu.append(np.full(len(pos_np), cpu, dtype=np.int64))
        if ev_trace:
            all_trace = np.concatenate(ev_trace)
            all_cpu = np.concatenate(ev_cpu)
            merged_cpus = all_cpu[np.argsort(all_trace, kind="stable")].tolist()
        else:
            merged_cpus = []
        applied = [0] * n
        event_index = [0] * n
        for cpu in merged_cpus:
            i = event_index[cpu]
            pos, kind, shared, operations = events[cpu][i]
            event_index[cpu] = i + 1
            prefix = prefixes[cpu]
            clock = clocks[cpu]
            delta = prefix[pos] - prefix[applied[cpu]]
            if delta:
                clock += delta
            if kind == 0:
                clock += 1.0
            if operations is None:
                operations, stolen_from = resolve(cpu, i)
            else:
                stolen_from = ()
            for cpu_cycles, bus_cycles, is_miss, is_dirty, counter in (
                operations
            ):
                counter[0] += 1
                if bus_cycles > 0.0:
                    grant = bus_free if bus_free > clock else clock
                    if arb:
                        grant += arb
                    if grant > clock:
                        waits[cpu] += grant - clock
                    bus_free = grant + bus_cycles
                    bus_busy += bus_cycles
                    bus_tx += 1
                    clock = grant + cpu_cycles
                else:
                    clock += cpu_cycles
                if is_miss:
                    if kind == 0:
                        fetch_misses += 1
                    else:
                        data_misses += 1
                        if shared:
                            shared_data_misses += 1
                    if is_dirty:
                        dirty_victims += 1
            clocks[cpu] = clock
            for victim in stolen_from:
                clocks[victim] += 1.0
                steals[victim] += 1
            applied[cpu] = pos + 1
        for cpu in range(n):
            prefix = prefixes[cpu]
            delta = prefix[counts[cpu]] - prefix[applied[cpu]]
            if delta:
                clocks[cpu] += delta
    else:
        # Simulated-time merge in legacy lexicographic (key, cpu)
        # order.  Steals land on the victim's true clock immediately
        # but enter its merge keys only from the first record
        # processed after the broadcast — the same key-staleness
        # reconstruction as Machine._run_columnar, simplified by the
        # absence of deferred touches.
        events = pack_events()
        cpu_fetch_pos = []
        is_fetch = derived.is_fetch_sorted
        offset = 0
        for count in counts:
            cpu_fetch_pos.append(
                np.flatnonzero(is_fetch[offset : offset + count]).tolist()
            )
            offset += count
        positions = [0] * n
        event_index = [0] * n
        next_event = [0] * n
        keys = [0.0] * n
        frontier_keys = [0.0] * n
        infinity = float("inf")
        active = []
        for cpu in range(n):
            if not counts[cpu]:
                continue
            active.append(cpu)
            row = events[cpu]
            e = row[0][0] if row else counts[cpu]
            next_event[cpu] = e
            keys[cpu] = float(prefixes[cpu][e])
        while active:
            best_key = infinity
            cpu = -1
            for candidate in active:
                key = keys[candidate]
                if key < best_key:
                    best_key = key
                    cpu = candidate
            prefix = prefixes[cpu]
            position = positions[cpu]
            e = next_event[cpu]
            clock = clocks[cpu]
            delta = prefix[e] - prefix[position]
            if delta:
                clock += delta
            if e == counts[cpu]:
                clocks[cpu] = clock
                frontier_keys[cpu] = infinity
                active.remove(cpu)
                continue
            i = event_index[cpu]
            _, kind, shared, operations = events[cpu][i]
            if kind == 0:
                clock += 1.0
            if operations is None:
                operations, stolen_from = resolve(cpu, i)
            else:
                stolen_from = ()
            for cpu_cycles, bus_cycles, is_miss, is_dirty, counter in (
                operations
            ):
                counter[0] += 1
                if bus_cycles > 0.0:
                    grant = bus_free if bus_free > clock else clock
                    if arb:
                        grant += arb
                    if grant > clock:
                        waits[cpu] += grant - clock
                    bus_free = grant + bus_cycles
                    bus_busy += bus_cycles
                    bus_tx += 1
                    clock = grant + cpu_cycles
                else:
                    clock += cpu_cycles
                if is_miss:
                    if kind == 0:
                        fetch_misses += 1
                    else:
                        data_misses += 1
                        if shared:
                            shared_data_misses += 1
                    if is_dirty:
                        dirty_victims += 1
            clocks[cpu] = clock
            if stolen_from:
                for victim in stolen_from:
                    clocks[victim] += 1.0
                    steals[victim] += 1
                for victim in stolen_from:
                    fk = frontier_keys[victim]
                    if fk > best_key or (fk == best_key and victim > cpu):
                        # The victim's next record was still unpushed
                        # at the broadcast: the steal is in every key
                        # from that record onwards.
                        if positions[victim] < next_event[victim]:
                            keys[victim] += 1.0
                    else:
                        # Records up to the broadcast's merge position
                        # were already (virtually) processed with
                        # frozen keys; materialise them, then land the
                        # steal before the rest.  The new frontier is
                        # found by fetch count: epoch record m's key
                        # is the victim's pre-steal clock plus the
                        # fetch prefix from the old frontier.
                        v_prefix = prefixes[victim]
                        v_pos = positions[victim]
                        base = v_prefix[v_pos]
                        pre_clock = clocks[victim] - 1.0
                        target = int(best_key - pre_clock) + base
                        if victim < cpu:
                            target += 1
                        if target <= base:
                            frontier = v_pos + 1
                        else:
                            frontier = cpu_fetch_pos[victim][target - 1] + 1
                        advance = v_prefix[frontier] - base
                        if advance:
                            clocks[victim] += advance
                        positions[victim] = frontier
                        frontier_keys[victim] = pre_clock + advance
                        if frontier < next_event[victim]:
                            keys[victim] += 1.0
            position = e + 1
            positions[cpu] = position
            i += 1
            event_index[cpu] = i
            row = events[cpu]
            e = row[i][0] if i < len(row) else counts[cpu]
            next_event[cpu] = e
            frontier_keys[cpu] = clock
            keys[cpu] = clock + (prefix[e] - prefix[position])

    return _assemble(
        name, trace, config, derived, op_info, clocks, waits, steals,
        fetch_misses, data_misses, shared_data_misses, dirty_victims,
        bus_busy, bus_tx, arb * bus_tx, protocol_stats,
    )
