"""Epoch-partitioned one-pass simulation for geometry-coupled protocols.

Dragon and WTI couple geometries through *sharing state*: what a miss
or store costs depends on which other caches hold the block, and
residency differs per cache size.  A cache-size sweep therefore
replayed the whole trace once per size.  This module lifts that
restriction by **epoch-partitioning** each CPU's stream at the
sharing-state-changing references and carrying only the sharer/owner
state of the *contended* blocks across epoch boundaries:

* **Dragon** (write-update): remote traffic never evicts
  (``remote_traffic_preserves_residency``), so residency and LRU
  order are functions of each CPU's own stream — classified per
  geometry by the :mod:`repro.sim.segment` kernel.  Only the
  *outcome labels* are coupled: whether a miss is supplied from a
  cache and whether a store hit broadcasts depend on the holders of
  the block, and holders can change only at **epoch boundaries** —
  misses (fills and evictions) and stores to contended blocks
  (broadcast state transitions).  Blocks referenced by a single CPU
  can never have remote holders, so their misses are pre-labelled
  vectorised; the merge carries a per-CPU map of contended-block
  line states (the sharer/owner columns) and resolves boundary
  events in the exact legacy replay order, including Dragon's
  cycle-steal key-staleness rules.
* **WTI** (write-through invalidate): invalidations remove lines,
  but only of contended blocks — so only the cache sets that ever
  hold a contended block in a CPU's own stream ("coupled sets") need
  simulating at the merge.  All other sets classify locally via the
  segment kernel; within coupled sets, references whose immediate
  same-set predecessor touched the same non-contended block are
  provable MRU-identity hits and skip the merge entirely.  Every
  store is an epoch boundary (each one posts a write-through).

Within an epoch every geometry sees identical sharer sets, which is
what makes per-geometry replays collapsible into per-geometry event
merges over one shared classification pass.  Statistics — including
``DragonStats``/``WtiStats`` and exact float clocks — are
bit-identical to per-config ``Machine.run`` (enforced by
``tests/sim/test_family.py``).

Exactness has the same gates as the one-pass engine (integral costs)
plus the segment kernel's associativity-1-or-2 bound;
``repro.sim.onepass.family_support`` routes anything else to the
per-config fallback with a recorded reason.
"""

from __future__ import annotations

import time
from collections import Counter

import numpy as np

from repro.core.operations import CostTable, Operation
from repro.obs.metrics import note_replay
from repro.sim.machine import (
    _DIRTY_VICTIM_OPERATIONS,
    _MISS_OPERATIONS,
    CpuStats,
    SimulationConfig,
    SimulationResult,
)
from repro.sim.protocols.dragon import DragonStats
from repro.sim.protocols.wti import WtiStats
from repro.sim.segment import classify_lru, dirty_flags, stream_positions
from repro.trace.derived import DerivedColumns, derived_columns
from repro.trace.records import Trace

__all__ = ["FAMILY_PROTOCOLS", "run_coupled_family"]

#: Geometry-coupled protocols the epoch engine handles.
FAMILY_PROTOCOLS = ("dragon", "wti")

# Contended-block line states carried across epochs (Dragon).  DIRTY
# and SHARED_DIRTY are odd so ``state & 1`` is the is-dirty/is-owner
# predicate.
_CLEAN = 0
_DIRTY = 1
_SHARED_CLEAN = 2
_SHARED_DIRTY = 3

_MISS_OP = {
    # (supplied_from_cache, dirty_victim) — mirror of dragon._MISS_OPERATION.
    (False, False): Operation.CLEAN_MISS_MEMORY,
    (False, True): Operation.DIRTY_MISS_MEMORY,
    (True, False): Operation.CLEAN_MISS_CACHE,
    (True, True): Operation.DIRTY_MISS_CACHE,
}

_WTI_OPS = (
    (Operation.CLEAN_MISS_MEMORY,),                           # miss
    (Operation.CLEAN_MISS_MEMORY, Operation.WRITE_THROUGH),   # store miss
    (Operation.WRITE_THROUGH,),                               # store hit
)


def run_coupled_family(
    name: str,
    trace: Trace,
    configs: dict[int, SimulationConfig],
    costs: CostTable,
    order: str,
) -> dict[int, SimulationResult]:
    """One-pass cache-size sweep for a geometry-coupled protocol.

    Callers (``repro.sim.onepass.run_geometry_family``) have already
    validated the protocol, order, cost integrality, and geometry
    family.
    """
    started = time.perf_counter()
    block_shift = next(iter(configs.values())).geometry.block_shift
    derived = derived_columns(trace, block_shift)
    n = trace.cpus
    spos = stream_positions(derived)
    contended = _contended_blocks(derived, n)
    if len(contended):
        contended_sorted = np.isin(derived.blocks_sorted, contended)
    else:
        contended_sorted = np.zeros(len(derived.blocks_sorted), dtype=bool)
    run_one = _run_dragon if name == "dragon" else _run_wti
    results = {
        size: run_one(
            trace, config, costs, order, derived, spos,
            contended, contended_sorted,
        )
        for size, config in configs.items()
    }
    note_replay(len(trace), "epoch")
    wall = time.perf_counter() - started
    for result in results.values():
        result.run_wall_s = wall
    return results


def _contended_blocks(derived: DerivedColumns, n: int) -> np.ndarray:
    """Blocks referenced by more than one CPU (uint64, sorted unique).

    Only these can ever have remote holders; everything else is
    provably private to its single referencing CPU.
    """
    pair = derived.blocks_sorted * np.uint64(n)
    pair += derived.cpus_sorted.astype(np.uint64)
    pair_blocks = np.unique(pair) // np.uint64(n)
    return np.unique(pair_blocks[1:][pair_blocks[1:] == pair_blocks[:-1]])


def _cpu_prefixes(derived: DerivedColumns, n: int) -> list[list[int]]:
    """Per-CPU fetch prefix sums (clock cost of an event-free epoch)."""
    prefixes = []
    for cpu in range(n):
        start = derived.offsets[cpu]
        stop = start + derived.counts[cpu]
        prefix_slice = derived.fetch_prefix[start : stop + 1]
        prefixes.append((prefix_slice - prefix_slice[0]).tolist())
    return prefixes


def _gather(array: np.ndarray, idx: np.ndarray) -> list:
    return array[idx].tolist()


# -- Dragon --------------------------------------------------------------


def _run_dragon(
    trace: Trace,
    config: SimulationConfig,
    costs: CostTable,
    order: str,
    derived: DerivedColumns,
    spos: np.ndarray,
    contended: np.ndarray,
    contended_sorted: np.ndarray,
) -> SimulationResult:
    n = trace.cpus
    geometry = config.geometry
    kinds = derived.kinds_sorted
    total = len(kinds)
    touches = kinds != 3  # Dragon ignores flushes entirely
    cls = classify_lru(derived, geometry.sets, geometry.associativity, touches)
    miss = cls.miss
    is_store = kinds == 2
    # Region-based, all kinds: DragonProtocol computes sharedness from
    # the block alone, so fetch misses on shared blocks count too.
    shared_sorted = derived.shared_sorted

    # Epoch boundaries: every miss (fills/evictions change holder
    # sets) plus every store to a contended block (may broadcast).
    ev_mask = miss | (is_store & contended_sorted & touches)

    # Store hits on non-contended blocks are provably exclusive: they
    # dirty the line locally and only bump the shared-write-hit
    # counter — countable vectorised, never epoch boundaries.
    untracked_write_hits = int(
        np.count_nonzero(
            is_store & touches & ~miss & ~contended_sorted & shared_sorted
        )
    )

    # Victim dirtiness: contended victims carry merge state; private
    # victims are dirty iff stored into while resident (they can only
    # ever be CLEAN/DIRTY — a SHARED fill needs holders).
    victim_block = cls.victim_block
    victim_dirty = np.zeros(total, dtype=bool)
    victim_contended = np.zeros(total, dtype=bool)
    v_idx = np.flatnonzero(victim_block >= 0)
    if len(v_idx):
        v_is_contended = np.isin(
            victim_block[v_idx].astype(np.uint64), contended
        )
        victim_contended[v_idx] = v_is_contended
        private = v_idx[~v_is_contended]
        if len(private):
            victim_dirty[private] = dirty_flags(
                derived,
                touches,
                spos,
                derived.cpus_sorted[private],
                victim_block[private],
                cls.victim_pos[private],
                spos[private],
            )

    offsets = derived.offsets
    counts = derived.counts
    epos: list[list[int]] = []
    ekind: list[list[int]] = []
    eblock: list[list[int]] = []
    emiss: list[list[bool]] = []
    eshared: list[list[bool]] = []
    etracked: list[list[bool]] = []
    evictim: list[list[int]] = []
    evictim_tracked: list[list[bool]] = []
    evictim_dirty: list[list[bool]] = []
    blocks_i64 = derived.blocks_sorted.astype(np.int64)
    for cpu in range(n):
        start = offsets[cpu]
        idx = np.flatnonzero(ev_mask[start : start + counts[cpu]]) + start
        epos.append((idx - start).tolist())
        ekind.append(_gather(kinds, idx))
        eblock.append(_gather(blocks_i64, idx))
        emiss.append(_gather(miss, idx))
        eshared.append(_gather(shared_sorted, idx))
        etracked.append(_gather(contended_sorted, idx))
        evictim.append(_gather(victim_block, idx))
        evictim_tracked.append(_gather(victim_contended, idx))
        evictim_dirty.append(_gather(victim_dirty, idx))

    # Sharer/owner state of contended blocks, per CPU, carried across
    # epoch boundaries.
    tstate: list[dict[int, int]] = [{} for _ in range(n)]
    stats = DragonStats()
    stats.shared_write_hits = untracked_write_hits
    cpu_range = range(n)
    write_broadcast = Operation.WRITE_BROADCAST

    def make_resolver(op_info):
        bcast = op_info[write_broadcast]
        miss_info = {key: (op_info[op],) for key, op in _MISS_OP.items()}
        miss_bcast_info = {
            key: (op_info[op], bcast) for key, op in _MISS_OP.items()
        }
        bcast_info = (bcast,)

        # Static pre-resolution: a miss on an untracked block with an
        # untracked victim can have no holders and touches no carried
        # state — its operations (and its shared-miss count) are fixed
        # before the merge, so the hot loop skips ``resolve`` for it.
        static_shared = 0
        estatic: list[list] = []
        for c in range(n):
            missed = emiss[c]
            tracked = etracked[c]
            vtracked = evictim_tracked[c]
            vdirty = evictim_dirty[c]
            shared_flags = eshared[c]
            row = []
            for i in range(len(missed)):
                if missed[i] and not tracked[i] and not vtracked[i]:
                    row.append(miss_info[False, vdirty[i]])
                    if shared_flags[i]:
                        static_shared += 1
                else:
                    row.append(None)
            estatic.append(row)
        stats.shared_misses += static_shared

        # Hot-loop tuning: common outcome pairs are preallocated and
        # captured names are bound as default arguments (locals, not
        # closure cells).
        empty_ret = ((), ())
        miss_ret = {key: (info, ()) for key, info in miss_info.items()}

        def resolve(
            cpu: int,
            i: int,
            eblock=eblock,
            eshared=eshared,
            emiss=emiss,
            etracked=etracked,
            evictim=evictim,
            evictim_tracked=evictim_tracked,
            evictim_dirty=evictim_dirty,
            ekind=ekind,
            tstate=tstate,
            stats=stats,
            cpu_range=cpu_range,
            miss_ret=miss_ret,
            miss_bcast_info=miss_bcast_info,
            bcast_info=bcast_info,
            empty_ret=empty_ret,
        ) -> tuple[tuple, tuple]:
            """Apply one epoch boundary's protocol actions (exact
            replica of ``DragonProtocol.access`` over the carried
            state)."""
            block = eblock[cpu][i]
            shared = eshared[cpu][i]
            if emiss[cpu][i]:
                holders: list[int] = []
                supplied = False
                if etracked[cpu][i]:
                    state = tstate
                    holders = [
                        j for j in cpu_range if j != cpu and block in state[j]
                    ]
                    owner = False
                    for j in holders:
                        if state[j][block] & 1:
                            owner = True
                            break
                    if shared:
                        stats.shared_misses += 1
                        if owner:
                            stats.shared_misses_dirty_elsewhere += 1
                    if holders:
                        supplied = owner
                        for j in holders:
                            holder_state = state[j][block]
                            if holder_state == _CLEAN:
                                state[j][block] = _SHARED_CLEAN
                            elif holder_state == _DIRTY:
                                state[j][block] = _SHARED_DIRTY
                        fill = _SHARED_CLEAN
                    else:
                        fill = _CLEAN
                elif shared:
                    stats.shared_misses += 1
                victim = evictim[cpu][i]
                if victim >= 0:
                    if evictim_tracked[cpu][i]:
                        dirty_victim = bool(tstate[cpu].pop(victim) & 1)
                    else:
                        dirty_victim = evictim_dirty[cpu][i]
                else:
                    dirty_victim = False
                if etracked[cpu][i]:
                    tstate[cpu][block] = fill
                if ekind[cpu][i] == 2:
                    if holders:
                        stats.broadcasts += 1
                        stats.broadcast_holders += len(holders)
                        tstate[cpu][block] = _SHARED_DIRTY
                        for j in holders:
                            tstate[j][block] = _SHARED_CLEAN
                        return (
                            miss_bcast_info[supplied, dirty_victim],
                            tuple(holders),
                        )
                    if etracked[cpu][i]:
                        tstate[cpu][block] = _DIRTY
                return miss_ret[supplied, dirty_victim]
            # Store hit on a contended block.
            state = tstate[cpu][block]
            if state == _CLEAN or state == _DIRTY:
                if shared:
                    stats.shared_write_hits += 1
                if state != _DIRTY:
                    tstate[cpu][block] = _DIRTY
                return empty_ret
            holders = [
                j for j in cpu_range if j != cpu and block in tstate[j]
            ]
            if shared:
                stats.shared_write_hits += 1
                if holders:
                    stats.shared_write_hits_present_elsewhere += 1
            if not holders:
                tstate[cpu][block] = _DIRTY
                return empty_ret
            stats.broadcasts += 1
            stats.broadcast_holders += len(holders)
            tstate[cpu][block] = _SHARED_DIRTY
            for j in holders:
                tstate[j][block] = _SHARED_CLEAN
            return (bcast_info, tuple(holders))

        return estatic, resolve

    return _merge_and_finish(
        "dragon", trace, config, costs, order, derived,
        epos, ekind, eshared, make_resolver, stats,
    )


# -- WTI -----------------------------------------------------------------


def _run_wti(
    trace: Trace,
    config: SimulationConfig,
    costs: CostTable,
    order: str,
    derived: DerivedColumns,
    spos: np.ndarray,
    contended: np.ndarray,
    contended_sorted: np.ndarray,
) -> SimulationResult:
    del spos  # WTI lines are never dirty; no interval queries needed
    n = trace.cpus
    geometry = config.geometry
    sets = geometry.sets
    assoc = geometry.associativity
    kinds = derived.kinds_sorted
    total = len(kinds)
    touches = kinds != 3  # WTI ignores flushes entirely
    is_store = kinds == 2
    shared_ev = derived.shared_sorted

    set_idx = (derived.blocks_sorted & np.uint64(sets - 1)).astype(np.int64)
    # Coupled sets: (cpu, set) pairs that ever hold a contended block
    # in the CPU's own stream.  Only these can see invalidations, so
    # only these need merge-time simulation.
    pair_key = derived.cpus_sorted.astype(np.int64) * sets + set_idx
    coupled_keys = np.unique(pair_key[contended_sorted & touches])
    if len(coupled_keys):
        coupled = np.isin(pair_key, coupled_keys)
    else:
        coupled = np.zeros(total, dtype=bool)

    cls = classify_lru(derived, sets, assoc, touches)
    # Uncoupled sets classify exactly locally; their events are the
    # misses plus every store (each posts a write-through).
    unc = touches & ~coupled
    # Within coupled sets, a reference whose immediate same-set
    # predecessor touched the same non-contended block is a provable
    # MRU-identity hit (invalidations only ever remove *other*,
    # contended lines, which cannot evict or demote this block).
    provable = cls.prev_same & ~is_store & ~contended_sorted
    ev_mask = (unc & (cls.miss | is_store)) | (touches & coupled & ~provable)

    # Event codes: 0 = miss, 1 = store miss, 2 = store hit (all
    # pre-resolved in uncoupled sets), 3 = resolve against the
    # simulated coupled set at the merge.
    code = np.full(total, 3, dtype=np.int64)
    unc_miss = unc & cls.miss
    code[unc_miss & ~is_store] = 0
    code[unc_miss & is_store] = 1
    code[unc & ~cls.miss & is_store] = 2

    offsets = derived.offsets
    counts = derived.counts
    epos: list[list[int]] = []
    ekind: list[list[int]] = []
    eblock: list[list[int]] = []
    eshared: list[list[bool]] = []
    ecode: list[list[int]] = []
    eset: list[list[int]] = []
    econtended: list[list[bool]] = []
    blocks_i64 = derived.blocks_sorted.astype(np.int64)
    for cpu in range(n):
        start = offsets[cpu]
        idx = np.flatnonzero(ev_mask[start : start + counts[cpu]]) + start
        epos.append((idx - start).tolist())
        ekind.append(_gather(kinds, idx))
        eblock.append(_gather(blocks_i64, idx))
        eshared.append(_gather(shared_ev, idx))
        ecode.append(_gather(code, idx))
        eset.append(_gather(set_idx, idx))
        econtended.append(_gather(contended_sorted, idx))

    # Simulated coupled sets.  ``family_support`` gates the engine to
    # associativity 1 or 2, so a set is at most two lines — modelled
    # as a fixed ``[mru, lru]`` list (-1 = empty way) instead of an
    # insertion-ordered dict: same LRU discipline, far cheaper per
    # touch in the merge loop.
    sim_sets: list[dict[int, list[int]]] = [{} for _ in range(n)]
    stats = WtiStats()
    cpu_range = range(n)
    two_way = assoc == 2

    def make_resolver(op_info):
        wti_info = tuple(
            tuple(op_info[op] for op in ops) for ops in _WTI_OPS
        )
        # Uncoupled-set events (codes 0-2) are fully classified before
        # the merge; only coupled-set events reach ``resolve``.
        estatic = [
            [wti_info[c] if c < 3 else None for c in ecode[cpu]]
            for cpu in range(n)
        ]

        # Hot-loop tuning: the four possible outcomes are preallocated
        # (no per-call tuple builds) and every captured name is bound
        # as a default argument (locals, not closure cells).
        hit_ret = ((), ())
        miss_ret = (wti_info[0], ())
        store_miss_ret = (wti_info[1], ())
        store_hit_ret = (wti_info[2], ())

        def resolve(
            cpu: int,
            i: int,
            eblock=eblock,
            eset=eset,
            ekind=ekind,
            econtended=econtended,
            sim_sets=sim_sets,
            stats=stats,
            cpu_range=cpu_range,
            two_way=two_way,
            hit_ret=hit_ret,
            miss_ret=miss_ret,
            store_miss_ret=store_miss_ret,
            store_hit_ret=store_hit_ret,
        ) -> tuple[tuple, tuple]:
            block = eblock[cpu][i]
            sid = eset[cpu][i]
            sets_c = sim_sets[cpu]
            sim = sets_c.get(sid)
            if sim is None:
                sim = [-1, -1]
                sets_c[sid] = sim
            if ekind[cpu][i] != 2:
                if block == sim[0]:
                    return hit_ret
                if two_way:
                    if block == sim[1]:
                        sim[1] = sim[0]
                        sim[0] = block
                        return hit_ret
                    sim[1] = sim[0]
                sim[0] = block
                return miss_ret
            # Store: the bus write invalidates every remote copy of a
            # contended block (non-contended blocks provably have none).
            if econtended[cpu][i]:
                for j in cpu_range:
                    if j == cpu:
                        continue
                    other = sim_sets[j].get(sid)
                    if other is not None:
                        if other[0] == block:
                            other[0] = other[1]
                            other[1] = -1
                            stats.invalidations += 1
                        elif other[1] == block:
                            other[1] = -1
                            stats.invalidations += 1
            if block == sim[0]:
                return store_hit_ret
            if two_way:
                if block == sim[1]:
                    sim[1] = sim[0]
                    sim[0] = block
                    return store_hit_ret
                sim[1] = sim[0]
            sim[0] = block
            return store_miss_ret

        return estatic, resolve

    if order == "trace" or n == 1:
        return _merge_and_finish(
            "wti", trace, config, costs, order, derived,
            epos, ekind, eshared, make_resolver, stats,
        )

    # Steal-free simulated-time merge, fully inlined.  WTI never
    # steals, so no broadcast ever perturbs another CPU's merge
    # position: every key and epoch advance is static.  Each event
    # carries its *outgoing* key gap (fetch cost to the next event, or
    # to end-of-stream), its block, and direct references to the
    # pre-created coupled-set lists it touches — the hot loop does no
    # function calls and no dict lookups, and the winning key IS the
    # post-epoch clock.
    op_info = _operation_info(costs)
    wti_info = tuple(tuple(op_info[op] for op in ops) for ops in _WTI_OPS)
    miss_ops, store_miss_ops, store_hit_ops = wti_info
    prefixes = _cpu_prefixes(derived, n)
    fetch_prefix = derived.fetch_prefix
    # Every coupled (cpu, set) pair gets its [mru, lru] list up front
    # (an untouched [-1, -1] behaves exactly like a lazily absent one).
    sim_map = {int(key): [-1, -1] for key in coupled_keys.tolist()}
    bus_free = 0.0
    bus_busy = 0.0
    bus_tx = 0
    clocks = [0.0] * n
    waits = [0.0] * n
    fetch_misses = 0
    data_misses = 0
    shared_data_misses = 0
    dirty_victims = 0
    invalidations = 0
    infinity = float("inf")
    active = []
    keys = [0.0] * n
    event_index = [0] * n
    events = []
    for cpu in range(n):
        count = counts[cpu]
        row_pos = epos[cpu]
        if not count:
            events.append([])
            continue
        if not row_pos:
            clocks[cpu] = float(prefixes[cpu][count])
            events.append([])
            continue
        # Gap costs computed on the global fetch prefix directly
        # (differences cancel the per-CPU base).
        start = int(offsets[cpu])
        pos_np = np.asarray(row_pos, dtype=np.int64) + start
        nxt = np.empty(len(pos_np), dtype=np.int64)
        nxt[:-1] = fetch_prefix[pos_np[1:]]
        nxt[-1] = fetch_prefix[start + count]
        gaps = (nxt - fetch_prefix[pos_np + 1]).tolist()
        key_base = cpu * sets
        esim = [sim_map.get(key_base + sid) for sid in eset[cpu]]
        # Remote coupled-set lists a contended store must scan for
        # invalidations, resolved per set id once.
        others_cache: dict[int, tuple] = {}
        eothers: list = []
        for sid, cont, kind in zip(eset[cpu], econtended[cpu], ekind[cpu]):
            if kind == 2 and cont:
                remote = others_cache.get(sid)
                if remote is None:
                    lists = []
                    for j in cpu_range:
                        if j != cpu:
                            other = sim_map.get(j * sets + sid)
                            if other is not None:
                                lists.append(other)
                    remote = tuple(lists)
                    others_cache[sid] = remote
                eothers.append(remote)
            else:
                eothers.append(None)
        estat = [wti_info[c] if c < 3 else None for c in ecode[cpu]]
        events.append(
            list(
                zip(
                    ekind[cpu], eshared[cpu], estat, gaps,
                    eblock[cpu], esim, eothers,
                )
            )
        )
        keys[cpu] = float(prefixes[cpu][row_pos[0]])
        active.append(cpu)
    while active:
        best_key = infinity
        cpu = -1
        for candidate in active:
            key = keys[candidate]
            if key < best_key:
                best_key = key
                cpu = candidate
        i = event_index[cpu]
        row = events[cpu]
        kind, shared, operations, gap_out, block, sim, others = row[i]
        clock = best_key
        if kind == 0:
            clock += 1.0
        if operations is None:
            # Coupled-set LRU, associativity <= 2 (same discipline as
            # ``resolve`` above).
            if kind != 2:
                if block == sim[0]:
                    operations = ()
                elif two_way and block == sim[1]:
                    sim[1] = sim[0]
                    sim[0] = block
                    operations = ()
                else:
                    if two_way:
                        sim[1] = sim[0]
                    sim[0] = block
                    operations = miss_ops
            else:
                if others is not None:
                    for other in others:
                        if other[0] == block:
                            other[0] = other[1]
                            other[1] = -1
                            invalidations += 1
                        elif other[1] == block:
                            other[1] = -1
                            invalidations += 1
                if block == sim[0]:
                    operations = store_hit_ops
                elif two_way and block == sim[1]:
                    sim[1] = sim[0]
                    sim[0] = block
                    operations = store_hit_ops
                else:
                    if two_way:
                        sim[1] = sim[0]
                    sim[0] = block
                    operations = store_miss_ops
        if operations:
            for cpu_cycles, bus_cycles, is_miss, is_dirty, counter in (
                operations
            ):
                counter[0] += 1
                if bus_cycles > 0.0:
                    if bus_free > clock:
                        waits[cpu] += bus_free - clock
                        grant = bus_free
                    else:
                        grant = clock
                    bus_free = grant + bus_cycles
                    bus_busy += bus_cycles
                    bus_tx += 1
                    clock = grant + cpu_cycles
                else:
                    clock += cpu_cycles
                if is_miss:
                    if kind == 0:
                        fetch_misses += 1
                    else:
                        data_misses += 1
                        if shared:
                            shared_data_misses += 1
                    if is_dirty:
                        dirty_victims += 1
        i += 1
        event_index[cpu] = i
        if i < len(row):
            keys[cpu] = clock + gap_out
        else:
            # End-of-stream advance folded into the last event: it has
            # no side effects, so its merge position relative to other
            # CPUs' events is immaterial.
            clocks[cpu] = clock + gap_out
            active.remove(cpu)
    stats.invalidations += invalidations
    return _assemble(
        "wti", trace, config, derived, op_info, clocks, waits, [0] * n,
        fetch_misses, data_misses, shared_data_misses, dirty_victims,
        bus_busy, bus_tx, stats,
    )


# -- shared event merge + result assembly --------------------------------


def _operation_info(costs: CostTable) -> dict:
    """Per-operation hot-loop info tuples: ``(cpu_cycles, bus_cycles,
    is_miss, is_dirty_victim, count_cell)``.  The mutable count cell
    keeps operation counting in one place across static and resolved
    events."""
    return {
        op: (
            float(cost.cpu_cycles),
            float(cost.channel_cycles),
            op in _MISS_OPERATIONS,
            op in _DIRTY_VICTIM_OPERATIONS,
            [0],
        )
        for op, cost in costs.items()
    }


def _assemble(
    name: str,
    trace: Trace,
    config: SimulationConfig,
    derived: DerivedColumns,
    op_info: dict,
    clocks: list[float],
    waits: list[float],
    steals: list[int],
    fetch_misses: int,
    data_misses: int,
    shared_data_misses: int,
    dirty_victims: int,
    bus_busy: float,
    bus_tx: int,
    protocol_stats,
) -> SimulationResult:
    n = trace.cpus
    result = SimulationResult(
        protocol=name,
        trace_name=trace.name,
        config=config,
        cpus=[CpuStats() for _ in range(n)],
    )
    mix = derived.mix
    for cpu in range(n):
        stats = result.cpus[cpu]
        stats.instructions = int(mix[cpu, 0])
        stats.loads = int(mix[cpu, 1])
        stats.stores = int(mix[cpu, 2])
        stats.flushes = int(mix[cpu, 3])
        stats.clock = clocks[cpu]
        stats.wait_cycles = waits[cpu]
        stats.stolen_cycles = steals[cpu]
    result.operation_counts = Counter(
        {op: info[4][0] for op, info in op_info.items() if info[4][0]}
    )
    result.fetch_misses = fetch_misses
    result.data_misses = data_misses
    result.shared_data_misses = shared_data_misses
    result.dirty_victim_misses = dirty_victims
    result.shared_loads = derived.shared_loads
    result.shared_stores = derived.shared_stores
    result.bus_busy_cycles = bus_busy
    result.bus_transactions = bus_tx
    result.protocol_stats = protocol_stats
    result.engine = "epoch"
    result.records_replayed = len(trace)
    return result


def _merge_and_finish(
    name: str,
    trace: Trace,
    config: SimulationConfig,
    costs: CostTable,
    order: str,
    derived: DerivedColumns,
    epos: list[list[int]],
    ekind: list[list[int]],
    eshared: list[list[bool]],
    make_resolver,
    protocol_stats,
) -> SimulationResult:
    """Replay epoch boundaries in exact legacy ``(key, cpu)`` order.

    The structure mirrors ``onepass._account`` (event-free epochs
    advance clocks via fetch prefix sums) extended with per-event
    resolution and — for Dragon — the cycle-steal key-staleness rules
    of ``Machine._run_columnar``'s event-driven merge, minus the
    deferred LRU touches (every epoch record here is free apart from
    its fetch cycle, so epochs are pure clock advances).

    ``make_resolver(op_info)`` returns ``(estatic, resolve)``:
    ``estatic[cpu][i]`` is the event's pre-resolved cost-info tuple
    when its operations are independent of the carried sharing state
    (the hot loop consumes it directly), or None to route the event
    through ``resolve`` — which returns ``(info_tuple, stolen_from)``
    built from the same ``op_info`` entries, so operation counting
    stays in one place.

    WTI's steal-free simulated-time merge does not come through here —
    ``_run_wti`` inlines it — so the time branch below always carries
    the steal machinery.
    """
    n = trace.cpus
    counts = derived.counts
    prefixes = _cpu_prefixes(derived, n)
    op_info = _operation_info(costs)
    estatic, resolve = make_resolver(op_info)

    # One tuple per event — a single list index in the hot loop
    # instead of four parallel-column lookups.
    def pack_events():
        return [
            list(zip(epos[c], ekind[c], eshared[c], estatic[c]))
            for c in range(n)
        ]

    # TimedBus.transact inlined into the merge loops as three locals
    # (identical arithmetic; the result assembly rebuilds the totals).
    bus_free = 0.0
    bus_busy = 0.0
    bus_tx = 0
    clocks = [0.0] * n
    waits = [0.0] * n
    steals = [0] * n
    fetch_misses = 0
    data_misses = 0
    shared_data_misses = 0
    dirty_victims = 0

    if order == "trace" or n == 1:
        events = pack_events()
        order_np = derived.order
        offsets = derived.offsets
        ev_trace = []
        ev_cpu = []
        for cpu in range(n):
            pos_np = np.asarray(epos[cpu], dtype=np.int64)
            ev_trace.append(order_np[offsets[cpu] + pos_np])
            ev_cpu.append(np.full(len(pos_np), cpu, dtype=np.int64))
        if ev_trace:
            all_trace = np.concatenate(ev_trace)
            all_cpu = np.concatenate(ev_cpu)
            merged_cpus = all_cpu[np.argsort(all_trace, kind="stable")].tolist()
        else:
            merged_cpus = []
        applied = [0] * n
        event_index = [0] * n
        for cpu in merged_cpus:
            i = event_index[cpu]
            pos, kind, shared, operations = events[cpu][i]
            event_index[cpu] = i + 1
            prefix = prefixes[cpu]
            clock = clocks[cpu]
            delta = prefix[pos] - prefix[applied[cpu]]
            if delta:
                clock += delta
            if kind == 0:
                clock += 1.0
            if operations is None:
                operations, stolen_from = resolve(cpu, i)
            else:
                stolen_from = ()
            for cpu_cycles, bus_cycles, is_miss, is_dirty, counter in (
                operations
            ):
                counter[0] += 1
                if bus_cycles > 0.0:
                    if bus_free > clock:
                        waits[cpu] += bus_free - clock
                        grant = bus_free
                    else:
                        grant = clock
                    bus_free = grant + bus_cycles
                    bus_busy += bus_cycles
                    bus_tx += 1
                    clock = grant + cpu_cycles
                else:
                    clock += cpu_cycles
                if is_miss:
                    if kind == 0:
                        fetch_misses += 1
                    else:
                        data_misses += 1
                        if shared:
                            shared_data_misses += 1
                    if is_dirty:
                        dirty_victims += 1
            clocks[cpu] = clock
            for victim in stolen_from:
                clocks[victim] += 1.0
                steals[victim] += 1
            applied[cpu] = pos + 1
        for cpu in range(n):
            prefix = prefixes[cpu]
            delta = prefix[counts[cpu]] - prefix[applied[cpu]]
            if delta:
                clocks[cpu] += delta
    else:
        # Simulated-time merge in legacy lexicographic (key, cpu)
        # order.  Steals land on the victim's true clock immediately
        # but enter its merge keys only from the first record
        # processed after the broadcast — the same key-staleness
        # reconstruction as Machine._run_columnar, simplified by the
        # absence of deferred touches.
        events = pack_events()
        cpu_fetch_pos = []
        is_fetch = derived.is_fetch_sorted
        offset = 0
        for count in counts:
            cpu_fetch_pos.append(
                np.flatnonzero(is_fetch[offset : offset + count]).tolist()
            )
            offset += count
        positions = [0] * n
        event_index = [0] * n
        next_event = [0] * n
        keys = [0.0] * n
        frontier_keys = [0.0] * n
        infinity = float("inf")
        active = []
        for cpu in range(n):
            if not counts[cpu]:
                continue
            active.append(cpu)
            row = events[cpu]
            e = row[0][0] if row else counts[cpu]
            next_event[cpu] = e
            keys[cpu] = float(prefixes[cpu][e])
        while active:
            best_key = infinity
            cpu = -1
            for candidate in active:
                key = keys[candidate]
                if key < best_key:
                    best_key = key
                    cpu = candidate
            prefix = prefixes[cpu]
            position = positions[cpu]
            e = next_event[cpu]
            clock = clocks[cpu]
            delta = prefix[e] - prefix[position]
            if delta:
                clock += delta
            if e == counts[cpu]:
                clocks[cpu] = clock
                frontier_keys[cpu] = infinity
                active.remove(cpu)
                continue
            i = event_index[cpu]
            _, kind, shared, operations = events[cpu][i]
            if kind == 0:
                clock += 1.0
            if operations is None:
                operations, stolen_from = resolve(cpu, i)
            else:
                stolen_from = ()
            for cpu_cycles, bus_cycles, is_miss, is_dirty, counter in (
                operations
            ):
                counter[0] += 1
                if bus_cycles > 0.0:
                    if bus_free > clock:
                        waits[cpu] += bus_free - clock
                        grant = bus_free
                    else:
                        grant = clock
                    bus_free = grant + bus_cycles
                    bus_busy += bus_cycles
                    bus_tx += 1
                    clock = grant + cpu_cycles
                else:
                    clock += cpu_cycles
                if is_miss:
                    if kind == 0:
                        fetch_misses += 1
                    else:
                        data_misses += 1
                        if shared:
                            shared_data_misses += 1
                    if is_dirty:
                        dirty_victims += 1
            clocks[cpu] = clock
            if stolen_from:
                for victim in stolen_from:
                    clocks[victim] += 1.0
                    steals[victim] += 1
                for victim in stolen_from:
                    fk = frontier_keys[victim]
                    if fk > best_key or (fk == best_key and victim > cpu):
                        # The victim's next record was still unpushed
                        # at the broadcast: the steal is in every key
                        # from that record onwards.
                        if positions[victim] < next_event[victim]:
                            keys[victim] += 1.0
                    else:
                        # Records up to the broadcast's merge position
                        # were already (virtually) processed with
                        # frozen keys; materialise them, then land the
                        # steal before the rest.  The new frontier is
                        # found by fetch count: epoch record m's key
                        # is the victim's pre-steal clock plus the
                        # fetch prefix from the old frontier.
                        v_prefix = prefixes[victim]
                        v_pos = positions[victim]
                        base = v_prefix[v_pos]
                        pre_clock = clocks[victim] - 1.0
                        target = int(best_key - pre_clock) + base
                        if victim < cpu:
                            target += 1
                        if target <= base:
                            frontier = v_pos + 1
                        else:
                            frontier = cpu_fetch_pos[victim][target - 1] + 1
                        advance = v_prefix[frontier] - base
                        if advance:
                            clocks[victim] += advance
                        positions[victim] = frontier
                        frontier_keys[victim] = pre_clock + advance
                        if frontier < next_event[victim]:
                            keys[victim] += 1.0
            position = e + 1
            positions[cpu] = position
            i += 1
            event_index[cpu] = i
            row = events[cpu]
            e = row[i][0] if i < len(row) else counts[cpu]
            next_event[cpu] = e
            frontier_keys[cpu] = clock
            keys[cpu] = clock + (prefix[e] - prefix[position])

    return _assemble(
        name, trace, config, derived, op_info, clocks, waits, steals,
        fetch_misses, data_misses, shared_data_misses, dirty_victims,
        bus_busy, bus_tx, protocol_stats,
    )
