"""Command-line interface: ``python -m repro`` or the ``swcc`` script.

Subcommands:

* ``list`` — show every registered experiment.
* ``run <id> [...]`` — run experiments and print their text reports
  (``--fast`` shrinks the trace-driven ones; ``all`` runs everything).
* ``params <workload>`` — generate a synthetic trace and print its
  measured workload parameters next to Table 7's ranges.
* ``predict`` — one-off model evaluation for a scheme/machine/size.
* ``fuzz`` — differential fuzzing: adversarial traces through both
  replay engines, the protocol oracles, and the analytical model;
  failures are minimized and written as JSON artifacts.
* ``check`` — bounded *exhaustive* state-space exploration of the
  protocols over a small model; every reachable transition is
  oracle-checked, violations shrink to minimized JSON artifacts.
* ``bench`` — run the pytest micro-benchmarks and print a regression
  diff against the committed baseline
  (``benchmarks/baseline_micro.json``); speedup floors asserted
  inside the benchmarks fail the run.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core import (
    PARAMETER_RANGES,
    BusSystem,
    NetworkSystem,
    WorkloadParams,
    known_schemes,
    scheme_by_name,
)

__all__ = ["main"]


def registry_protocols() -> tuple[str, ...]:
    """Every protocol with an oracle — the default fuzz/check set.

    Both ``swcc fuzz`` and ``swcc check`` derive their default protocol
    list from this one place so a newly registered protocol is picked
    up by both (and by nothing less than the whole registry).
    """
    from repro.verify.oracles import ORACLES

    return tuple(sorted(ORACLES))


def registry_disciplines() -> tuple[str, ...]:
    """Every registered bus arbitration discipline.

    ``swcc predict --discipline`` and ``swcc fuzz --disciplines``
    derive their choices/defaults from the simulator's registry
    (:data:`repro.sim.bus.DISCIPLINES`) so a newly registered
    discipline reaches both without hand-maintained lists
    (pinned by ``tests/test_registry_drift.py``).
    """
    from repro.sim.bus import DISCIPLINES

    return tuple(DISCIPLINES)


def _scheme_help() -> str:
    """Scheme-argument help generated from the live registry.

    Every name :func:`scheme_by_name` accepts appears here, so the
    help text cannot drift from the registry (it once hard-coded
    "base/nocache/flush/dragon" and silently omitted the extension
    schemes).
    """
    entries = []
    for canonical, aliases in known_schemes().items():
        shown = canonical.lower()
        if aliases:
            shown += f" ({', '.join(aliases)})"
        entries.append(shown)
    return "scheme name or alias: " + ", ".join(entries)


def _command_list(_: argparse.Namespace) -> int:
    from repro.experiments import list_experiments

    for experiment in list_experiments():
        print(
            f"{experiment.experiment_id:28s} [{experiment.paper_ref:18s}] "
            f"{experiment.title}"
        )
    return 0


def _default_manifest_path(command: str) -> str:
    import os
    import time

    stamp = time.strftime("%Y%m%d-%H%M%S")
    return os.path.join("swcc-runs", f"{command}-{stamp}.jsonl")


def _open_monitor(
    command: str,
    args: argparse.Namespace,
    config: dict,
    resume=None,
):
    """Build the run's SweepMonitor, or None with ``--no-manifest``.

    The manifest gets its ``run-start`` header here; a resumed run
    appends to the resumed manifest (and its checkpoint sidecar) so
    one file tells the whole story.
    """
    from repro.obs import (
        CheckpointWriter,
        ManifestWriter,
        ProgressLine,
        SweepMonitor,
        run_header,
    )

    if args.no_manifest:
        return None
    if resume is not None:
        path = str(resume.manifest_path)
    else:
        path = args.manifest or _default_manifest_path(command)
    checkpoint_path = (
        resume.header.get("checkpoint") if resume is not None else None
    ) or path + ".ckpt"
    manifest = ManifestWriter(path)
    header = run_header(command, config=config, checkpoint=checkpoint_path)
    if resume is not None:
        header["resumed_from"] = str(resume.manifest_path)
    manifest.event("run-start", **header)
    return SweepMonitor(
        manifest=manifest,
        checkpoint=CheckpointWriter(checkpoint_path),
        progress=ProgressLine(),
        resume=resume,
    )


def _command_run(args: argparse.Namespace) -> int:
    import time

    from repro.experiments import get_experiment, list_experiments
    from repro.obs import use_monitor

    resume_state = None
    if args.resume:
        from repro.obs import load_resume_state

        try:
            resume_state = load_resume_state(args.resume)
        except (OSError, ValueError) as error:
            print(
                f"cannot resume from {args.resume}: {error}", file=sys.stderr
            )
            return 2
        stored = resume_state.header.get("config", {})
        # The stored config wins for everything that shapes the work
        # (sweep numbering must match the checkpoint); --jobs stays a
        # per-invocation choice because parallelism never changes
        # results.
        if not args.experiment:
            args.experiment = list(stored.get("experiments", []))
        args.fast = bool(stored.get("fast", args.fast))
    if not args.experiment:
        print(
            "swcc run: no experiments given (and no --resume manifest "
            "to take them from)",
            file=sys.stderr,
        )
        return 2
    if "all" in args.experiment:
        experiments = list_experiments()
    else:
        experiments = [get_experiment(name) for name in args.experiment]

    monitor = _open_monitor(
        "run",
        args,
        config={"experiments": list(args.experiment), "fast": args.fast},
        resume=resume_state,
    )
    started = time.perf_counter()
    failed = []
    crashed = []
    with use_monitor(monitor):
        for experiment in experiments:
            if monitor is not None:
                monitor.note_label(experiment.experiment_id)
                monitor.event(
                    "experiment-start",
                    experiment=experiment.experiment_id,
                )
            try:
                result = experiment.run(fast=args.fast, jobs=args.jobs)
            except Exception as error:
                # Only a monitored run degrades gracefully: a crashed
                # experiment (usually collateral of failed sweep cells)
                # is recorded and the remaining experiments still run.
                if monitor is None:
                    raise
                crashed.append(experiment.experiment_id)
                monitor.event(
                    "experiment-failed",
                    experiment=experiment.experiment_id,
                    error=f"{type(error).__name__}: {error}",
                )
                print(
                    f"experiment {experiment.experiment_id} FAILED: "
                    f"{type(error).__name__}: {error}",
                    file=sys.stderr,
                )
                continue
            print(result.render())
            print()
            if monitor is not None:
                monitor.event(
                    "experiment-finish",
                    experiment=experiment.experiment_id,
                    digest=result.digest(),
                    checks_passed=result.all_checks_pass,
                )
            if args.csv_dir:
                _write_csv(result, args.csv_dir)
            if not result.all_checks_pass:
                failed.append(experiment.experiment_id)
    if monitor is not None:
        monitor.event(
            "run-finish",
            wall_s=round(time.perf_counter() - started, 3),
            exit_code=1 if failed or crashed else 0,
            cells_run=monitor.cells_run,
            cells_cached=monitor.cells_cached,
            cells_failed=monitor.cells_failed,
        )
        manifest_path = monitor.manifest.path
        monitor.close()
        for sweep, failure in monitor.failures:
            print(f"cell failure (sweep {sweep}): {failure}", file=sys.stderr)
        if monitor.failures or crashed:
            print(
                f"resume with: swcc run --resume {manifest_path}",
                file=sys.stderr,
            )
    if failed:
        print(f"shape checks FAILED in: {', '.join(failed)}", file=sys.stderr)
    if crashed:
        print(
            f"experiments CRASHED: {', '.join(crashed)}", file=sys.stderr
        )
    return 1 if failed or crashed else 0


def _write_csv(result, csv_dir: str) -> None:
    """Dump an experiment's series and tables as CSV files."""
    import csv
    from pathlib import Path

    directory = Path(csv_dir)
    directory.mkdir(parents=True, exist_ok=True)
    if result.series:
        from repro.experiments.report import series_table

        table = series_table(result.series, result.xlabel or "x")
        path = directory / f"{result.experiment_id}_series.csv"
        with open(path, "w", newline="", encoding="utf-8") as stream:
            writer = csv.writer(stream)
            writer.writerow(table.headers)
            writer.writerows(table.rows)
        print(f"wrote {path}")
    for index, table in enumerate(result.tables):
        path = directory / f"{result.experiment_id}_table{index}.csv"
        with open(path, "w", newline="", encoding="utf-8") as stream:
            writer = csv.writer(stream)
            writer.writerow(table.headers)
            writer.writerows(table.rows)
        print(f"wrote {path}")


def _command_report(args: argparse.Namespace) -> int:
    """Run every experiment and write a consolidated markdown summary."""
    from pathlib import Path

    from repro.experiments import list_experiments

    lines = [
        "# Reproduction report",
        "",
        "| experiment | paper ref | checks | detail |",
        "|---|---|---|---|",
    ]
    failures = 0
    for experiment in list_experiments():
        result = experiment.run(fast=args.fast, jobs=args.jobs)
        passed = sum(1 for check in result.checks if check.passed)
        total = len(result.checks)
        failures += total - passed
        failed_names = ", ".join(
            check.name for check in result.checks if not check.passed
        )
        lines.append(
            f"| {experiment.experiment_id} | {experiment.paper_ref} | "
            f"{passed}/{total} | {failed_names or 'all pass'} |"
        )
        print(f"{experiment.experiment_id:32s} {passed}/{total}")
    lines.append("")
    lines.append(
        f"Total: {failures} failing checks."
        if failures
        else "Total: every shape check passes."
    )
    output = Path(args.output)
    output.write_text("\n".join(lines) + "\n", encoding="utf-8")
    print(f"wrote {output}")
    return 1 if failures else 0


def _command_params(args: argparse.Namespace) -> int:
    from repro.sim import SimulationConfig, measure_workload_params
    from repro.trace import preset

    trace = preset(args.workload).generate(
        records_per_cpu=args.records if args.records else None
    )
    config = SimulationConfig(cache_bytes=args.cache_kb * 1024)
    params = measure_workload_params(trace, config)
    print(f"workload {args.workload!r}, {len(trace)} records, "
          f"{args.cache_kb}K caches")
    print(f"{'parameter':8s} {'measured':>10s}   Table 7 range")
    for name, value in params.as_dict().items():
        parameter_range = PARAMETER_RANGES[name]
        low, high = sorted((parameter_range.low, parameter_range.high))
        inside = "  " if low <= value <= high else " *"
        print(
            f"{name:8s} {value:10.4f}{inside} "
            f"[{parameter_range.low:g} .. {parameter_range.high:g}]"
        )
    print("(* = outside the paper's observed range)")
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    """Generate, inspect, or re-flush synthetic traces."""
    from repro.trace import (
        collect_stats,
        load_trace,
        preset,
        save_trace,
    )
    from repro.trace.flushing import apply_flush_policy, implied_apl

    if args.trace_action == "generate":
        recipe = preset(args.workload)
        trace = recipe.generate(
            records_per_cpu=args.records if args.records else None,
            seed=args.seed if args.seed is not None else None,
        )
        if args.policy != "section":
            trace = apply_flush_policy(trace, args.policy)
        save_trace(trace, args.output)
        print(
            f"wrote {args.output}: {len(trace)} records, {trace.cpus} CPUs, "
            f"flush policy {args.policy!r}"
        )
        return 0

    trace = load_trace(args.file)
    stats = collect_stats(trace)
    print(f"trace {trace.name!r}: {len(trace)} records, {trace.cpus} CPUs")
    print(f"  instructions      {stats.instructions}")
    print(f"  loads / stores    {stats.loads} / {stats.stores}")
    print(f"  flushes           {stats.flushes}")
    print(f"  ls                {stats.ls:.4f}")
    print(f"  shd               {stats.shd:.4f}")
    print(f"  wr                {stats.wr:.4f}")
    print(f"  apl (run est.)    {stats.apl:.2f}")
    print(f"  apl (per flush)   {implied_apl(trace):.2f}")
    print(f"  mdshd             {stats.mdshd:.4f}")
    print(f"  shared blocks     {stats.shared_blocks_touched}")
    return 0


def _command_predict(args: argparse.Namespace) -> int:
    scheme = scheme_by_name(args.scheme)
    params = WorkloadParams.at_level(args.level)
    if args.network:
        if args.discipline != "fcfs" or args.arbitration_cycles != 0.0:
            print(
                "bus disciplines do not apply to the multistage "
                "network model; ignoring --discipline/"
                "--arbitration-cycles",
                file=sys.stderr,
            )
        stages = max((args.processors - 1).bit_length(), 1)
        if 2**stages != args.processors:
            print(
                f"network size must be a power of two; rounding "
                f"{args.processors} up to {2 ** stages}",
                file=sys.stderr,
            )
        prediction = NetworkSystem(stages).evaluate(scheme, params)
        print(
            f"{scheme.name} on a {prediction.processors}-processor "
            f"{stages}-stage network ({args.level} workload):"
        )
        print(f"  c = {prediction.cost.cpu_cycles:.4f} cycles/instr")
        print(f"  t = {prediction.cost.channel_cycles:.4f} network cycles")
        print(f"  request rate m*t = {prediction.request_rate:.4f}")
        print(f"  utilization     = {prediction.utilization:.4f}")
        print(f"  processing power= {prediction.processing_power:.2f}")
    else:
        system = BusSystem(
            bus_discipline=args.discipline,
            arbitration_cycles=args.arbitration_cycles,
        )
        prediction = system.evaluate(scheme, params, args.processors)
        print(
            f"{scheme.name} on a {args.processors}-processor bus "
            f"({args.level} workload):"
        )
        if args.discipline != "fcfs" or args.arbitration_cycles != 0.0:
            print(
                f"  discipline      = {args.discipline} "
                f"(arbitration {args.arbitration_cycles:g} cycles)"
            )
        print(f"  c = {prediction.cost.cpu_cycles:.4f} cycles/instr")
        print(f"  b = {prediction.cost.channel_cycles:.4f} bus cycles")
        print(f"  w = {prediction.waiting_cycles:.4f} contention cycles")
        print(f"  utilization     = {prediction.utilization:.4f}")
        print(f"  processing power= {prediction.processing_power:.2f}")
        print(f"  bus utilization = {prediction.bus_utilization:.4f}")
    return 0


def _command_fuzz(args: argparse.Namespace) -> int:
    import time

    from repro.experiments.parallel import CellFailure, parallel_map
    from repro.obs import use_monitor
    from repro.verify import (
        failure_artifact,
        generate_case,
        load_failure_artifact,
        minimize_failure,
        replay_artifact,
        write_failure_artifact,
    )
    from repro.verify.differential import seed_worker
    from repro.verify.oracles import ORACLES

    if args.replay:
        try:
            artifact = load_failure_artifact(args.replay)
        except (OSError, ValueError) as error:
            print(f"cannot replay {args.replay}: {error}", file=sys.stderr)
            return 2
        reproduced = replay_artifact(artifact)
        if reproduced is None:
            print(
                f"{args.replay}: failure no longer reproduces "
                f"({artifact['protocol']}/{artifact['check']})"
            )
            return 0
        print(
            f"{args.replay}: REPRODUCED {reproduced.protocol}/"
            f"{reproduced.check}: {reproduced.message}"
        )
        return 1

    if args.smoke:
        # A deterministic sub-minute pass for CI: fewer, smaller cases.
        seeds, scale = 24, 0.4
    else:
        seeds, scale = args.seeds, args.scale
    protocols = tuple(
        name.strip() for name in args.protocols.split(",") if name.strip()
    )
    if not protocols:
        # Registry-derived default: fuzz everything with an oracle, so
        # newly registered protocols cannot be silently skipped (the
        # old hard-coded default omitted base and directory).
        protocols = registry_protocols()
    unknown = sorted(set(protocols) - set(ORACLES))
    if unknown:
        print(
            f"no oracle for protocol(s) {', '.join(unknown)}; "
            f"available: {', '.join(sorted(ORACLES))}",
            file=sys.stderr,
        )
        return 2
    disciplines = tuple(
        name.strip() for name in args.disciplines.split(",") if name.strip()
    )
    if not disciplines:
        # Registry-derived default, like --protocols: a newly
        # registered discipline is differential-checked automatically.
        disciplines = registry_disciplines()
    unknown = sorted(set(disciplines) - set(registry_disciplines()))
    if unknown:
        print(
            f"unknown bus discipline(s) {', '.join(unknown)}; "
            f"available: {', '.join(registry_disciplines())}",
            file=sys.stderr,
        )
        return 2
    compare_model = not args.no_model
    items = [
        (seed, scale, protocols, compare_model, disciplines)
        for seed in range(args.seed_start, args.seed_start + seeds)
    ]
    monitor = _open_monitor(
        "fuzz",
        args,
        config={
            "seeds": seeds,
            "seed_start": args.seed_start,
            "scale": scale,
            "protocols": list(protocols),
            "compare_model": compare_model,
            "disciplines": list(disciplines),
        },
    )
    started = time.perf_counter()
    with use_monitor(monitor):
        if monitor is not None:
            monitor.note_label("fuzz")
        per_seed = parallel_map(seed_worker, items, jobs=args.jobs)

    # A monitored (resilient) sweep returns a CellFailure where a seed
    # *crashed* the checker itself — a different beast from the seed's
    # checks reporting divergences, so keep the two populations apart.
    failures = []
    crashed = []
    for item, batch in zip(items, per_seed):
        if isinstance(batch, CellFailure):
            crashed.append((item[0], batch))
        else:
            failures.extend(batch)
    for seed, casualty in crashed:
        print(
            f"CRASH seed={seed}: checker died: {casualty.error}",
            file=sys.stderr,
        )
    for failure in failures:
        print(
            f"FAIL seed={failure.seed} shape={failure.shape} "
            f"protocol={failure.protocol} check={failure.check}: "
            f"{failure.message}",
            file=sys.stderr,
        )
        case = generate_case(failure.seed, scale=scale)
        minimized = minimize_failure(failure, case)
        trace = minimized if minimized is not None else case.trace
        if minimized is not None:
            print(
                f"  minimized {len(case.trace)} -> {len(minimized)} "
                f"records",
                file=sys.stderr,
            )
        path = write_failure_artifact(
            failure_artifact(failure, trace, case.config),
            args.artifact_dir,
        )
        print(f"  artifact: {path}", file=sys.stderr)
    clean = seeds - len({f.seed for f in failures}) - len(crashed)
    summary = (
        f"swcc fuzz: {seeds} seeds x {len(protocols)} protocols "
        f"({', '.join(protocols)}), disciplines "
        f"{', '.join(disciplines)}, model comparison "
        f"{'on' if compare_model else 'off'}: "
        f"{clean} clean, {len(failures)} failure(s)"
    )
    if crashed:
        summary += f", {len(crashed)} crashed seed(s)"
    print(summary)
    exit_code = 1 if failures or crashed else 0
    if monitor is not None:
        monitor.event(
            "run-finish",
            wall_s=round(time.perf_counter() - started, 3),
            exit_code=exit_code,
            cells_run=monitor.cells_run,
            cells_cached=monitor.cells_cached,
            cells_failed=monitor.cells_failed,
        )
        monitor.close()
    return exit_code


def _command_check(args: argparse.Namespace) -> int:
    import time

    from repro.obs import use_monitor
    from repro.verify import ORACLES, ExploreBounds, explore_protocol
    from repro.verify.explore import write_counterexample

    if args.protocol:
        protocols = tuple(
            name.strip()
            for name in args.protocol.split(",")
            if name.strip()
        )
    else:
        protocols = registry_protocols()
    unknown = sorted(set(protocols) - set(ORACLES))
    if unknown:
        print(
            f"no oracle for protocol(s) {', '.join(unknown)}; "
            f"available: {', '.join(sorted(ORACLES))}",
            file=sys.stderr,
        )
        return 2
    try:
        bounds = ExploreBounds(
            cpus=args.cpus,
            lines=args.lines,
            sets=args.sets,
            depth=args.depth,
            max_states=args.max_states,
            conformance=args.conformance,
        )
    except ValueError as error:
        print(f"swcc check: {error}", file=sys.stderr)
        return 2

    monitor = _open_monitor(
        "check",
        args,
        config={
            "protocols": list(protocols),
            "cpus": bounds.cpus,
            "lines": bounds.lines,
            "sets": bounds.sets,
            "depth": bounds.depth,
            "max_states": bounds.max_states,
            "conformance": bounds.conformance,
        },
    )
    started = time.perf_counter()
    print(
        f"swcc check: {bounds.cpus} cpus x {bounds.lines} line(s) x "
        f"{bounds.sets} set(s), depth {bounds.depth}, "
        f"{len(protocols)} protocol(s)"
    )
    print(
        f"\n{'protocol':10s} {'states':>8s} {'edges':>9s} {'depth':>5s} "
        f"{'frontier':>8s} {'checked':>7s} {'wall':>7s}  result"
    )
    violations = 0
    with use_monitor(monitor):
        for protocol in protocols:
            if monitor is not None:
                monitor.note_label(protocol)
            report = explore_protocol(protocol, bounds)
            if report.violation is not None:
                violations += 1
                result = f"VIOLATION ({report.violation.failure.check})"
            elif report.truncated:
                result = (
                    f"truncated at {bounds.max_states} states "
                    f"(not exhaustive)"
                )
            elif report.frontier:
                result = f"exhaustive to depth {bounds.depth}"
            else:
                # The reachable set closed before the depth bound ran
                # out: the guarantee holds at *every* depth.
                result = (
                    f"exhaustive (state space closed at depth "
                    f"{report.depth_reached})"
                )
            print(
                f"{report.protocol:10s} {report.states:8d} "
                f"{report.edges:9d} {report.depth_reached:5d} "
                f"{report.frontier:8d} {report.conformance_checked:7d} "
                f"{report.wall_s:6.2f}s  {result}"
            )
            if monitor is not None:
                monitor.event(
                    "explore-finish",
                    protocol=report.protocol,
                    states=report.states,
                    edges=report.edges,
                    depth_reached=report.depth_reached,
                    frontier=report.frontier,
                    truncated=report.truncated,
                    conformance_checked=report.conformance_checked,
                    violation=(
                        report.violation.failure.check
                        if report.violation is not None
                        else ""
                    ),
                    wall_s=round(report.wall_s, 3),
                )
            if report.violation is not None:
                failure = report.violation.failure
                print(
                    f"  {failure.check}: {failure.message}",
                    file=sys.stderr,
                )
                path, minimized = write_counterexample(
                    report.violation, protocol, bounds.config,
                    args.artifact_dir,
                )
                print(
                    f"  counterexample: {len(report.violation.trace)} "
                    f"-> {len(minimized)} records",
                    file=sys.stderr,
                )
                print(f"  artifact: {path}", file=sys.stderr)
    exit_code = 1 if violations else 0
    if monitor is not None:
        monitor.event(
            "run-finish",
            wall_s=round(time.perf_counter() - started, 3),
            exit_code=exit_code,
            cells_run=monitor.cells_run,
            cells_cached=monitor.cells_cached,
            cells_failed=monitor.cells_failed,
        )
        monitor.close()
    if violations:
        print(
            f"\n{violations} protocol(s) violated their reference "
            f"rules within the explored bounds",
            file=sys.stderr,
        )
    return exit_code


def _repo_paths() -> tuple[str, str]:
    """Locate the repo root and its ``benchmarks/`` directory.

    Prefers the current directory (normal invocation from a checkout);
    falls back to the source tree this module lives in (``src/repro``
    is two levels below the root).
    """
    import os

    here = os.path.abspath(
        os.path.join(os.path.dirname(__file__), "..", "..")
    )
    for root in (os.getcwd(), here):
        bench_dir = os.path.join(root, "benchmarks")
        if os.path.isdir(bench_dir):
            return root, bench_dir
    raise FileNotFoundError(
        "cannot locate the benchmarks/ directory (run from the repo root)"
    )


def _format_seconds(seconds: float) -> str:
    if seconds < 1e-3:
        return f"{seconds * 1e6:8.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:8.2f}ms"
    return f"{seconds:8.3f}s "


def _command_bench(args: argparse.Namespace) -> int:
    import json
    import os
    import subprocess
    import tempfile

    try:
        root, bench_dir = _repo_paths()
    except FileNotFoundError as error:
        print(error, file=sys.stderr)
        return 2
    files = args.files or sorted(
        os.path.join("benchmarks", name)
        for name in os.listdir(bench_dir)
        if name.startswith("bench_") and name.endswith(".py")
    )
    baseline_path = args.baseline or os.path.join(
        bench_dir, "baseline_micro.json"
    )
    try:
        with open(baseline_path, encoding="utf-8") as handle:
            baseline = {
                entry["name"]: entry
                for entry in json.load(handle)["benchmarks"]
            }
    except (OSError, ValueError, KeyError) as error:
        print(
            f"cannot read baseline {baseline_path}: {error}",
            file=sys.stderr,
        )
        return 2

    descriptor, json_path = tempfile.mkstemp(
        suffix=".json", prefix="swcc-bench-"
    )
    os.close(descriptor)
    try:
        env = dict(os.environ)
        src = os.path.join(root, "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        outcome = subprocess.run(
            [
                sys.executable, "-m", "pytest", *files,
                "--benchmark-only", "--benchmark-disable-gc", "-q",
                f"--benchmark-json={json_path}",
            ],
            cwd=root,
            env=env,
        )
        try:
            with open(json_path, encoding="utf-8") as handle:
                measured = json.load(handle)["benchmarks"]
        except (OSError, ValueError, KeyError):
            print("benchmark run produced no JSON report", file=sys.stderr)
            return outcome.returncode or 1
    finally:
        os.unlink(json_path)

    # Regression diff: this run's min wall time vs the committed
    # baseline.  Absolute times are machine-dependent, so the ratio is
    # informational unless --max-regression opts into a hard gate; the
    # speedup floors (which *are* machine-independent claims) were
    # already asserted inside the benchmarks themselves.
    print(
        f"\n{'benchmark':44s} {'min':>10s} {'baseline':>10s} "
        f"{'ratio':>6s}  speedup"
    )
    regressions = []
    for entry in measured:
        name = entry["name"]
        minimum = entry["stats"]["min"]
        speedup = entry.get("extra_info", {}).get("speedup")
        reference = baseline.get(name)
        if reference is None:
            line = (
                f"{name:44s} {_format_seconds(minimum)} "
                f"{'(new)':>10s} {'':>6s}"
            )
        else:
            base_min = reference["stats"]["min"]
            ratio = minimum / base_min if base_min > 0 else float("inf")
            flag = ""
            if args.max_regression and ratio > args.max_regression:
                regressions.append((name, ratio))
                flag = "  REGRESSION"
            line = (
                f"{name:44s} {_format_seconds(minimum)} "
                f"{_format_seconds(base_min)} {ratio:5.2f}x{flag}"
            )
        if speedup is not None:
            base_speedup = (reference or {}).get("extra_info", {}).get(
                "speedup"
            )
            line += f"  {speedup:.2f}x"
            if base_speedup is not None:
                line += f" (baseline {base_speedup:.2f}x)"
        print(line)
    missing = sorted(
        set(baseline) - {entry["name"] for entry in measured}
    )
    if missing and not args.files:
        print(f"\nnot measured this run: {', '.join(missing)}")

    if outcome.returncode:
        print("\nbenchmark floor violations (see pytest output above)")
        return outcome.returncode
    if regressions:
        worst = ", ".join(
            f"{name} ({ratio:.2f}x)" for name, ratio in regressions
        )
        print(
            f"\n{len(regressions)} benchmark(s) regressed beyond "
            f"{args.max_regression:.1f}x the baseline: {worst}",
            file=sys.stderr,
        )
        return 1
    return 0


def _validated_number(module_name: str, validator_name: str, kind=int):
    """Build an argparse type shim around a library validator.

    Like :func:`_jobs_count`, validation lives in the library (the
    named ``validate_*`` function), so the CLI and the API reject the
    same inputs for the same reason; the shim only converts the
    failure into argparse's error type.
    """

    def parse(value: str):
        import importlib

        try:
            number = kind(value)
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"invalid {kind.__name__} value: {value!r}"
            ) from None
        validate = getattr(
            importlib.import_module(module_name), validator_name
        )
        try:
            validate(number)
        except ValueError as error:
            raise argparse.ArgumentTypeError(str(error)) from None
        return number

    return parse


_check_cpus = _validated_number("repro.verify.explore", "validate_cpus")
_check_lines = _validated_number("repro.verify.explore", "validate_lines")
_check_sets = _validated_number("repro.verify.explore", "validate_sets")
_check_depth = _validated_number("repro.verify.explore", "validate_depth")
_check_max_states = _validated_number(
    "repro.verify.explore", "validate_max_states"
)
_check_conformance = _validated_number(
    "repro.verify.explore", "validate_conformance"
)
_fuzz_seeds = _validated_number("repro.verify.fuzzer", "validate_seed_count")
_fuzz_scale = _validated_number(
    "repro.verify.fuzzer", "validate_scale", kind=float
)
_arbitration_cycles = _validated_number(
    "repro.sim.bus", "validate_arbitration_cycles", kind=float
)


def _jobs_count(value: str) -> int:
    """``--jobs`` argument type: a non-negative integer.

    Validation lives in
    :func:`repro.experiments.parallel.validate_jobs`, so the CLI and
    the library reject the same inputs for the same reason; this shim
    only converts the failure into argparse's error type.
    """
    from repro.experiments.parallel import validate_jobs

    try:
        jobs = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid int value: {value!r}"
        ) from None
    try:
        validate_jobs(jobs)
    except ValueError as error:
        raise argparse.ArgumentTypeError(str(error)) from None
    return jobs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="swcc",
        description=(
            "Reproduction of Owicki & Agarwal, 'Evaluating the Performance "
            "of Software Cache Coherence' (ASPLOS 1989)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list experiments")
    list_parser.set_defaults(handler=_command_list)

    run_parser = subparsers.add_parser("run", help="run experiments")
    run_parser.add_argument(
        "experiment", nargs="*",
        help="experiment ids (see 'list'), or 'all'; may be omitted "
             "with --resume (taken from the manifest)",
    )
    run_parser.add_argument(
        "--fast", action="store_true",
        help="shrink trace-driven experiments for a quick pass",
    )
    run_parser.add_argument(
        "--manifest", default="", metavar="FILE",
        help="run-manifest path (default: swcc-runs/run-<timestamp>"
             ".jsonl; checkpoint sidecar at <FILE>.ckpt)",
    )
    run_parser.add_argument(
        "--no-manifest", action="store_true",
        help="disable the run manifest, checkpointing, and resilient "
             "cell execution",
    )
    run_parser.add_argument(
        "--resume", default="", metavar="FILE",
        help="resume a previous run from its manifest: completed "
             "cells are served from the checkpoint, only missing or "
             "failed cells re-execute (output is byte-identical to an "
             "uninterrupted run)",
    )
    run_parser.add_argument(
        "--csv-dir", default="",
        help="also dump each experiment's series/tables as CSV here",
    )
    run_parser.add_argument(
        "--jobs", type=_jobs_count, default=None, metavar="N",
        help=(
            "run independent sweep cells in up to N worker processes "
            "(results are identical to a serial run; 0 = serial, "
            "requests past the cell count are clamped)"
        ),
    )
    run_parser.set_defaults(handler=_command_run)

    report_parser = subparsers.add_parser(
        "report", help="run everything, write a markdown summary"
    )
    report_parser.add_argument(
        "--output", default="reproduction_report.md",
        help="markdown file to write",
    )
    report_parser.add_argument(
        "--fast", action="store_true",
        help="shrink trace-driven experiments",
    )
    report_parser.add_argument(
        "--jobs", type=_jobs_count, default=None, metavar="N",
        help="worker processes for parallelisable sweeps (0 = serial)",
    )
    report_parser.set_defaults(handler=_command_report)

    params_parser = subparsers.add_parser(
        "params", help="measure workload parameters of a synthetic trace"
    )
    params_parser.add_argument("workload", help="pops, thor, pero, or pero8")
    params_parser.add_argument(
        "--cache-kb", type=int, default=64, help="cache size in KB"
    )
    params_parser.add_argument(
        "--records", type=int, default=0,
        help="records per CPU (0 = preset default)",
    )
    params_parser.set_defaults(handler=_command_params)

    trace_parser = subparsers.add_parser(
        "trace", help="generate or inspect synthetic traces"
    )
    trace_actions = trace_parser.add_subparsers(
        dest="trace_action", required=True
    )
    generate_parser = trace_actions.add_parser(
        "generate", help="generate a preset workload to a file"
    )
    generate_parser.add_argument("workload", help="pops/thor/pero/pero8")
    generate_parser.add_argument("output", help="output path (*.gz to pack)")
    generate_parser.add_argument(
        "--records", type=int, default=0,
        help="records per CPU (0 = preset default)",
    )
    generate_parser.add_argument(
        "--seed", type=int, default=None, help="override the preset seed"
    )
    generate_parser.add_argument(
        "--policy", default="section",
        choices=("eager", "section", "oracle", "none"),
        help="flush-placement policy to apply",
    )
    generate_parser.set_defaults(handler=_command_trace)
    stat_parser = trace_actions.add_parser(
        "stat", help="print statistics of a trace file"
    )
    stat_parser.add_argument("file", help="trace file path")
    stat_parser.set_defaults(handler=_command_trace)

    predict_parser = subparsers.add_parser(
        "predict", help="evaluate the analytical model once"
    )
    predict_parser.add_argument("scheme", help=_scheme_help())
    predict_parser.add_argument(
        "processors", type=int, help="number of processors"
    )
    predict_parser.add_argument(
        "--level", default="middle", choices=("low", "middle", "high"),
        help="Table 7 parameter level",
    )
    predict_parser.add_argument(
        "--network", action="store_true",
        help="multistage network instead of a bus",
    )
    predict_parser.add_argument(
        "--discipline", default="fcfs", choices=registry_disciplines(),
        help="bus arbitration discipline (default fcfs)",
    )
    predict_parser.add_argument(
        "--arbitration-cycles", type=_arbitration_cycles, default=0.0,
        metavar="A",
        help="arbitration overhead per bus grant (per grant window "
             "under batched; default 0)",
    )
    predict_parser.set_defaults(handler=_command_predict)

    fuzz_parser = subparsers.add_parser(
        "fuzz",
        help="differential fuzzing: engines vs oracles vs the model",
    )
    fuzz_parser.add_argument(
        "--seeds", type=_fuzz_seeds, default=200, metavar="N",
        help="number of fuzz seeds to run (default 200)",
    )
    fuzz_parser.add_argument(
        "--seed-start", type=int, default=0, metavar="K",
        help="first seed (sweeps [K, K+N))",
    )
    fuzz_parser.add_argument(
        "--protocols", default="",
        metavar="LIST",
        help="comma-separated protocols to check (default: every "
             "protocol with an oracle)",
    )
    fuzz_parser.add_argument(
        "--disciplines", default="",
        metavar="LIST",
        help="comma-separated bus disciplines for the arbitrated-"
             "engine differential (default: every registered "
             "discipline)",
    )
    fuzz_parser.add_argument(
        "--scale", type=_fuzz_scale, default=1.0, metavar="F",
        help="trace-length scale factor for generated cases",
    )
    fuzz_parser.add_argument(
        "--no-model", action="store_true",
        help="skip the analytical-model tolerance comparison",
    )
    fuzz_parser.add_argument(
        "--smoke", action="store_true",
        help="deterministic sub-minute pass for CI (overrides "
             "--seeds/--scale)",
    )
    fuzz_parser.add_argument(
        "--jobs", type=_jobs_count, default=None, metavar="N",
        help="run seeds in up to N worker processes (0 = serial)",
    )
    fuzz_parser.add_argument(
        "--artifact-dir", default="fuzz-failures", metavar="DIR",
        help="directory for minimized JSON failure artifacts",
    )
    fuzz_parser.add_argument(
        "--replay", default="", metavar="FILE",
        help="replay a failure artifact instead of fuzzing",
    )
    fuzz_parser.add_argument(
        "--manifest", default="", metavar="FILE",
        help="run-manifest path (default: swcc-runs/fuzz-<timestamp>"
             ".jsonl)",
    )
    fuzz_parser.add_argument(
        "--no-manifest", action="store_true",
        help="disable the run manifest and resilient seed execution",
    )
    fuzz_parser.set_defaults(handler=_command_fuzz)

    check_parser = subparsers.add_parser(
        "check",
        help="exhaustive small-model exploration of every protocol",
    )
    check_parser.add_argument(
        "--protocol", default="", metavar="LIST",
        help="comma-separated protocols to explore (default: every "
             "protocol with an oracle)",
    )
    check_parser.add_argument(
        "--cpus", type=_check_cpus, default=2, metavar="N",
        help="CPUs in the small model (2-8, default 2)",
    )
    check_parser.add_argument(
        "--lines", type=_check_lines, default=1, metavar="N",
        help="cache lines per set (1-4, default 1)",
    )
    check_parser.add_argument(
        "--sets", type=_check_sets, default=1, metavar="N",
        help="cache sets (1, 2 or 4; default 1)",
    )
    check_parser.add_argument(
        "--depth", type=_check_depth, default=8, metavar="D",
        help="exploration depth bound in accesses (default 8)",
    )
    check_parser.add_argument(
        "--max-states", type=_check_max_states, default=200_000,
        metavar="N",
        help="state budget before the search reports truncation "
             "(default 200000)",
    )
    check_parser.add_argument(
        "--conformance", type=_check_conformance, default=256,
        metavar="N",
        help="cross-engine conformance replays per protocol "
             "(0 disables, default 256)",
    )
    check_parser.add_argument(
        "--artifact-dir", default="check-failures", metavar="DIR",
        help="directory for minimized JSON counterexample artifacts",
    )
    check_parser.add_argument(
        "--manifest", default="", metavar="FILE",
        help="run-manifest path (default: swcc-runs/check-<timestamp>"
             ".jsonl)",
    )
    check_parser.add_argument(
        "--no-manifest", action="store_true",
        help="disable the run manifest",
    )
    check_parser.set_defaults(handler=_command_check)

    bench_parser = subparsers.add_parser(
        "bench",
        help="run the micro-benchmarks and diff against the baseline",
    )
    bench_parser.add_argument(
        "files", nargs="*", metavar="FILE",
        help="benchmark files to run (default: benchmarks/bench_*.py)",
    )
    bench_parser.add_argument(
        "--baseline", default="", metavar="FILE",
        help="baseline pytest-benchmark JSON (default: "
             "benchmarks/baseline_micro.json)",
    )
    bench_parser.add_argument(
        "--max-regression", type=float, default=None, metavar="F",
        help="exit non-zero when any benchmark's min wall time exceeds "
             "F times its baseline (default: report only — absolute "
             "times are machine-dependent)",
    )
    bench_parser.set_defaults(handler=_command_bench)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
