"""JSON failure artifacts: reproduce a fuzz failure without the fuzzer.

An artifact embeds everything a reproduction needs — the (minimized)
trace records, the cache configuration, and which check failed — as
plain JSON, so a failure found on one machine replays bit-for-bit on
another regardless of fuzzer-generator drift:

.. code-block:: json

    {
      "format": "swcc-fuzz-failure",
      "version": 1,
      "seed": 17, "shape": "pingpong", "protocol": "dragon",
      "check": "oracle", "message": "...",
      "config": {"cache_bytes": 1024, "block_bytes": 16,
                 "associativity": 2},
      "trace": {"name": "...", "cpus": 4,
                "shared": [8388608, 8392704],
                "records": [[0, 2, 8388608], ...]},
      "repro": "swcc fuzz --replay <this file>"
    }

``swcc fuzz --replay FILE`` calls :func:`replay_artifact`, which
re-runs exactly the failed check on the embedded trace.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.sim.machine import SimulationConfig
from repro.trace.records import AddressRange, Trace
from repro.verify.differential import (
    FuzzFailure,
    _failure_predicate,
    check_case,
)
from repro.verify.fuzzer import FuzzCase

__all__ = [
    "failure_artifact",
    "load_failure_artifact",
    "replay_artifact",
    "write_failure_artifact",
]

_FORMAT = "swcc-fuzz-failure"
_VERSION = 1


def failure_artifact(
    failure: FuzzFailure, trace: Trace, config: SimulationConfig
) -> dict:
    """Serialisable artifact for one failure and its (minimized) trace."""
    return {
        "format": _FORMAT,
        "version": _VERSION,
        "seed": int(failure.seed),
        "shape": failure.shape,
        "protocol": failure.protocol,
        "check": failure.check,
        "message": failure.message,
        "config": {
            "cache_bytes": int(config.cache_bytes),
            "block_bytes": int(config.block_bytes),
            "associativity": int(config.associativity),
        },
        "trace": {
            "name": trace.name,
            "cpus": int(trace.cpus),
            "shared": [
                int(trace.shared_region.start),
                int(trace.shared_region.stop),
            ],
            "records": [
                [int(cpu), int(kind), int(address)]
                for cpu, kind, address in zip(
                    trace.cpu.tolist(),
                    trace.kind.tolist(),
                    trace.address.tolist(),
                )
            ],
        },
        "repro": (
            f"swcc fuzz --replay <this file>  # or: swcc fuzz "
            f"--seeds 1 --seed-start {int(failure.seed)}"
        ),
    }


def write_failure_artifact(artifact: dict, directory: str | Path) -> Path:
    """Write an artifact under ``directory``; returns the file path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    check_slug = artifact["check"].replace(":", "-")
    path = directory / (
        f"fuzz-seed{artifact['seed']}-{artifact['protocol']}"
        f"-{check_slug}.json"
    )
    path.write_text(json.dumps(artifact, indent=2) + "\n")
    return path


def load_failure_artifact(path: str | Path) -> dict:
    """Load and structurally validate a failure artifact."""
    artifact = json.loads(Path(path).read_text())
    if not isinstance(artifact, dict) or artifact.get("format") != _FORMAT:
        raise ValueError(
            f"{path} is not a {_FORMAT} artifact"
        )
    if artifact.get("version") != _VERSION:
        raise ValueError(
            f"{path}: unsupported artifact version "
            f"{artifact.get('version')!r} (expected {_VERSION})"
        )
    for key in ("seed", "shape", "protocol", "check", "config", "trace"):
        if key not in artifact:
            raise ValueError(f"{path}: artifact is missing {key!r}")
    return artifact


def _rebuild(artifact: dict) -> tuple[Trace, SimulationConfig]:
    config_data = artifact["config"]
    config = SimulationConfig(
        cache_bytes=config_data["cache_bytes"],
        block_bytes=config_data["block_bytes"],
        associativity=config_data["associativity"],
    )
    trace_data = artifact["trace"]
    records = trace_data["records"]
    trace = Trace.from_arrays(
        name=trace_data["name"],
        cpus=trace_data["cpus"],
        shared_region=AddressRange(*trace_data["shared"]),
        cpu=np.asarray([r[0] for r in records], dtype=np.int64),
        kind=np.asarray([r[1] for r in records], dtype=np.int64),
        address=np.asarray([r[2] for r in records], dtype=np.uint64),
    )
    return trace, config


def replay_artifact(artifact: dict) -> FuzzFailure | None:
    """Re-run the artifact's failed check on its embedded trace.

    Returns:
        The reproduced :class:`FuzzFailure`, or None if the failure no
        longer reproduces (e.g. the bug has been fixed).
    """
    trace, config = _rebuild(artifact)
    failure = FuzzFailure(
        seed=artifact["seed"],
        shape=artifact["shape"],
        protocol=artifact["protocol"],
        check=artifact["check"],
        message=artifact.get("message", ""),
    )
    predicate = _failure_predicate(failure, config)
    if predicate is not None:
        return failure if predicate(trace) else None
    # Model-band failures: re-run the model comparison on the
    # embedded workload.
    case = FuzzCase(
        seed=failure.seed,
        shape=failure.shape,
        trace=trace,
        config=config,
        model_comparable=True,
    )
    failures = check_case(
        case, protocols=(failure.protocol,), compare_model=True
    )
    for reproduced in failures:
        if reproduced.check == "model-band":
            return reproduced
    return None
