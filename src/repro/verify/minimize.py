"""Shrink a failing trace to a small still-failing reproduction.

Two stages, both driven by a caller-supplied predicate (``True`` =
"this trace still fails"):

1. **Prefix bisection** — replay determinism means a failure at record
   ``i`` still fails for every prefix of length ``> i`` and cannot be
   provoked by records after it, so the minimal failing *prefix* is
   found by binary search in ``O(log n)`` predicate evaluations.
2. **Chunk removal** (ddmin-flavoured) — greedily delete spans of
   records from the front and middle of the prefix while the failure
   persists, halving the span size when no deletion sticks.  Unlike
   the prefix length, deletability is not monotone, so this stage is
   best-effort and budgeted.

The predicate must be pure (same trace → same verdict); the fuzzer's
cases and both replay engines are deterministic, so any predicate
built from them qualifies.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.trace.records import Trace

__all__ = ["minimize_failing_trace", "trace_prefix"]


def trace_prefix(trace: Trace, length: int) -> Trace:
    """The first ``length`` records of ``trace`` as a new Trace."""
    length = max(0, min(length, len(trace)))
    return _trace_subset(trace, np.arange(length))


def _trace_subset(trace: Trace, indices: np.ndarray) -> Trace:
    """A new Trace holding ``trace``'s records at ``indices``.

    Always spans the original CPU count (``Trace.cpus`` comes from the
    constructor, not the column contents), so per-CPU structure and the
    shared region are preserved even when a subset drops a CPU's last
    record.
    """
    return Trace.from_arrays(
        name=trace.name,
        cpus=trace.cpus,
        shared_region=trace.shared_region,
        cpu=trace.cpu[indices],
        kind=trace.kind[indices],
        address=trace.address[indices],
    )


def minimize_failing_trace(
    trace: Trace,
    still_fails: Callable[[Trace], bool],
    max_checks: int = 64,
) -> Trace:
    """Return a smaller trace for which ``still_fails`` holds.

    Args:
        trace: a trace known to fail (``still_fails(trace)`` is True;
            this is not re-verified).
        still_fails: pure predicate; True when the failure reproduces.
        max_checks: total predicate-evaluation budget across both
            stages (prefix bisection consumes ``O(log n)`` of it).

    Returns:
        A trace no larger than the input on which ``still_fails``
        returned True.  The input itself is returned if no reduction
        survives the budget.
    """
    budget = [max_checks]

    def check(candidate: Trace) -> bool:
        if budget[0] <= 0:
            return False
        budget[0] -= 1
        return still_fails(candidate)

    # Stage 1: smallest failing prefix.  Invariant: fail(high) holds,
    # fail(low) does not (low = 0 is the empty trace, which cannot
    # fail a replay check).
    low, high = 0, len(trace)
    while high - low > 1 and budget[0] > 0:
        mid = (low + high) // 2
        if check(trace_prefix(trace, mid)):
            high = mid
        else:
            low = mid
    best = trace_prefix(trace, high)

    # Stage 2: greedy chunk removal from the surviving prefix.  The
    # last record is what the failure fires on, so never drop it.
    chunk = max(1, len(best) // 2)
    while chunk >= 1 and len(best) > 1 and budget[0] > 0:
        removed_any = False
        start = 0
        while start < len(best) - 1 and budget[0] > 0:
            keep = np.concatenate(
                [
                    np.arange(0, start),
                    np.arange(
                        min(start + chunk, len(best) - 1), len(best)
                    ),
                ]
            )
            candidate = _trace_subset(best, keep)
            if len(candidate) < len(best) and check(candidate):
                best = candidate
                removed_any = True
                # Re-test the same offset: the next chunk slid into it.
            else:
                start += chunk
        if not removed_any:
            chunk //= 2
    return best
