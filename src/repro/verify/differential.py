"""Differential runner: engines vs oracles vs the analytical model.

For each fuzzed case and protocol, five checks run in order (first
failure wins for that protocol):

1. **Engine diff** — the columnar and legacy engines must produce
   *identical* statistics (every counter, every per-CPU float), for
   both replay orders.
2. **Invariants** — the columnar results must satisfy the global
   conservation laws of :mod:`repro.verify.invariants`.
3. **One-pass diff** — for protocols with a family engine
   (:func:`repro.sim.supports_onepass`), a
   :func:`repro.sim.run_geometry_family` call covering the case's
   cache size plus a 4x larger one must engage the one-pass or epoch
   engine, reproduce the columnar statistics exactly at the case's
   size, and satisfy the invariants at the larger size — both replay
   orders.
3b. **Segment diff** — where :func:`repro.sim.segment_reason` declares
   the segment-scan kernel exact, ``Machine.run(engine="segment")``
   must reproduce the columnar statistics bit-for-bit.
3c. **Scan diff** — WTI's vectorized scan merge
   (``wti_merge="scan"``) must reproduce the retained inlined
   reference merge (``wti_merge="loop"``) bit-for-bit at the case's
   size (time order only — the scan never runs in trace order).
4. **Oracle shadow** — the protocol re-runs with every fast-path
   contract flag disabled while a per-line reference state machine
   (:mod:`repro.verify.oracles`) validates each transition and then
   reconciles its independently derived counters with the result.
5. **Shadow diff** — the shadowed run's statistics must equal the
   unshadowed columnar run's.  The shadow took the everything-is-slow
   path, so this differentially validates the fast-path contract
   flags (``read_hit_is_free``, ``store_hit_is_local``, …) and the
   static hit analysis they enable.
6. **Discipline sweep** — the case re-runs on the deferred-grant
   arbitrated engine once per requested bus discipline.  Every run
   must satisfy the conservation invariants; for the geometry-local
   protocols (whose outcomes are interleaving-independent) the
   ``fcfs`` arbitrated run must additionally reproduce the columnar
   statistics bit-for-bit, and every other discipline must conserve
   the order-independent counters (operation counts, misses, bus busy
   cycles, transactions) against the columnar baseline.

Cases the fuzzer marks ``model_comparable`` (statistically
well-behaved workload-like traces) additionally compare simulated
processing power against the analytical model inside the documented
:data:`MODEL_BANDS` relative-error tolerances — the paper's own
Section 3 validation, continuously re-run on random workloads.  The
adversarial shapes (ping-pong, hot lines, …) deliberately violate the
model's statistical assumptions, so no bands can hold there and the
model check is skipped for them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Sequence

from repro.core import BASE, DRAGON, NO_CACHE, SOFTWARE_FLUSH, BusSystem
from repro.sim.bus import DISCIPLINES
from repro.sim.machine import Machine, SimulationConfig, SimulationResult
from repro.sim.measure import measure_workload_params
from repro.sim.onepass import (
    ONEPASS_PROTOCOLS,
    run_geometry_family,
    supports_onepass,
)
from repro.sim.segment import segment_reason
from repro.trace.records import Trace
from repro.verify.fuzzer import FuzzCase, generate_case
from repro.verify.invariants import (
    InvariantViolation,
    check_result_invariants,
)
from repro.verify.minimize import minimize_failing_trace
from repro.verify.oracles import OracleViolation, shadow_protocol

__all__ = [
    "MODEL_BANDS",
    "PAPER_PROTOCOLS",
    "FuzzFailure",
    "check_case",
    "minimize_failure",
    "oracle_run",
    "run_seed",
    "seed_worker",
    "stats_signature",
]

#: The four schemes the acceptance sweep must cover (the paper's
#: software schemes plus the two hardware reference points it models).
PAPER_PROTOCOLS = ("dragon", "wti", "swflush", "nocache")

#: Simulator protocol name -> analytical-model scheme.  WTI has no
#: bus-model counterpart in :mod:`repro.core.schemes`, so it is
#: engine/oracle-checked only.
_MODEL_SCHEMES = {
    "base": BASE,
    "dragon": DRAGON,
    "nocache": NO_CACHE,
    "swflush": SOFTWARE_FLUSH,
}

#: Documented relative-error tolerance of model vs simulation
#: processing power, per protocol, on ``model_comparable`` fuzz cases.
#: The paper reports the model "generally within 25%" of its simulator
#: on real traces (Section 3); our synthetic workloads are smaller and
#: noisier (hundreds-to-thousands of references per CPU, so miss-rate
#: estimates carry sampling error the paper's multi-million-reference
#: traces do not).  Bands are set from the empirical error
#: distribution over the first 200 fuzzer seeds (observed maxima:
#: base 0.23, dragon 0.22, nocache 0.16, swflush 0.28) with headroom;
#: Software-Flush inherits extra error from the flush-overhead
#: approximation, hence the wider band.
MODEL_BANDS: dict[str, float] = {
    "base": 0.35,
    "dragon": 0.35,
    "nocache": 0.35,
    "swflush": 0.45,
}


@dataclass(frozen=True)
class FuzzFailure:
    """One reproducible divergence, in picklable primitives.

    ``check`` identifies the failing stage: ``engine-diff:<order>``,
    ``invariants:<order>``, ``onepass-diff:<order>``,
    ``segment-diff:<order>``, ``scan-diff``, ``oracle``,
    ``shadow-diff``, ``discipline:<name>``, or ``model-band``.
    """

    seed: int
    shape: str
    protocol: str
    check: str
    message: str


def stats_signature(result: SimulationResult) -> tuple:
    """Everything a run reports, as one comparable tuple.

    Floats are included exactly (no rounding): the engines promise
    identical arithmetic, so equality is the contract.
    """
    protocol_stats = result.protocol_stats
    return (
        result.protocol,
        tuple(
            (
                cpu.instructions,
                cpu.loads,
                cpu.stores,
                cpu.flushes,
                cpu.clock,
                cpu.wait_cycles,
                cpu.stolen_cycles,
            )
            for cpu in result.cpus
        ),
        tuple(
            sorted(
                (operation.value, count)
                for operation, count in result.operation_counts.items()
                if count
            )
        ),
        result.fetch_misses,
        result.data_misses,
        result.dirty_victim_misses,
        result.shared_loads,
        result.shared_stores,
        result.shared_data_misses,
        result.bus_busy_cycles,
        result.bus_transactions,
        None
        if protocol_stats is None
        else tuple(sorted(vars(protocol_stats).items())),
    )


_SIGNATURE_FIELDS = (
    "protocol",
    "per-cpu stats (instructions, loads, stores, flushes, clock, "
    "waits, steals)",
    "operation counts",
    "fetch_misses",
    "data_misses",
    "dirty_victim_misses",
    "shared_loads",
    "shared_stores",
    "shared_data_misses",
    "bus_busy_cycles",
    "bus_transactions",
    "protocol_stats",
)


def _describe_divergence(left: tuple, right: tuple) -> str:
    for field_name, a, b in zip(_SIGNATURE_FIELDS, left, right):
        if a != b:
            return f"{field_name}: {a!r} != {b!r}"
    return "signatures differ"


def oracle_run(
    trace: Trace,
    config: SimulationConfig,
    protocol,
    order: str = "time",
    engine: str = "columnar",
) -> SimulationResult:
    """Replay ``trace`` under oracle shadow.

    Every transition is validated as it happens and the oracle's
    counters are reconciled with the result afterwards.

    Raises:
        OracleViolation: on the first rule the run breaks.
    """
    sink: list = []
    machine = Machine(shadow_protocol(protocol, sink), config)
    result = machine.run(trace, order=order, engine=engine)
    sink[-1].finalize(result)
    return result


def check_case(
    case: FuzzCase,
    protocols: Sequence[str] = PAPER_PROTOCOLS,
    compare_model: bool = True,
    disciplines: Sequence[str] = DISCIPLINES,
) -> list[FuzzFailure]:
    """All verification failures of one fuzz case (empty = clean)."""
    failures: list[FuzzFailure] = []
    baseline: dict[str, SimulationResult] = {}
    for protocol in protocols:
        failure, result = _check_protocol(case, protocol, disciplines)
        if failure is not None:
            failures.append(failure)
        elif result is not None:
            baseline[protocol] = result
    if compare_model and case.model_comparable:
        failures.extend(_check_model(case, baseline))
    return failures


def run_seed(
    seed: int,
    scale: float = 1.0,
    protocols: Sequence[str] = PAPER_PROTOCOLS,
    compare_model: bool = True,
    disciplines: Sequence[str] = DISCIPLINES,
) -> list[FuzzFailure]:
    """Generate the case for ``seed`` and run every check on it."""
    case = generate_case(seed, scale=scale)
    return check_case(
        case,
        protocols=protocols,
        compare_model=compare_model,
        disciplines=disciplines,
    )


def seed_worker(
    item: tuple[int, float, tuple[str, ...], bool, tuple[str, ...]]
) -> list[FuzzFailure]:
    """Module-level (picklable) worker for parallel fuzz sweeps."""
    seed, scale, protocols, compare_model, disciplines = item
    return run_seed(
        seed,
        scale=scale,
        protocols=protocols,
        compare_model=compare_model,
        disciplines=disciplines,
    )


#: Backwards-compatible alias (the CLI imported the private name).
_seed_worker = seed_worker


def _run(
    trace: Trace,
    config: SimulationConfig,
    protocol: str,
    order: str,
    engine: str = "columnar",
) -> SimulationResult:
    return Machine(protocol, config).run(trace, order=order, engine=engine)


def _onepass_divergence(
    trace: Trace,
    config: SimulationConfig,
    protocol: str,
    order: str,
    columnar: SimulationResult,
) -> str | None:
    """Why the one-pass family diverges from ``columnar`` (None = ok).

    The family spans the case's cache size plus a 4x larger one so the
    incremental per-geometry prefilter actually runs; the case size is
    compared bit-for-bit against the columnar result and the extra
    size is invariant-checked.
    """
    sizes = (config.cache_bytes, config.cache_bytes * 4)
    family = run_geometry_family(
        protocol,
        trace,
        sizes,
        block_bytes=config.block_bytes,
        associativity=config.associativity,
        order=order,
    )
    run = family[config.cache_bytes]
    if run.engine not in ("onepass", "epoch", "epoch-scan"):
        return (
            f"fast path not engaged (engine={run.engine!r}) for a "
            "supported protocol"
        )
    left = stats_signature(run)
    right = stats_signature(columnar)
    if left != right:
        return "one-pass family vs columnar: " + _describe_divergence(
            left, right
        )
    try:
        check_result_invariants(family[sizes[1]], trace=trace)
    except InvariantViolation as violation:
        return f"invariants at {sizes[1]}B family member: {violation}"
    return None


def _segment_divergence(
    trace: Trace,
    config: SimulationConfig,
    protocol: str,
    order: str,
    columnar: SimulationResult,
) -> str | None:
    """Why the segment-scan engine diverges from ``columnar`` (None = ok).

    Only called when :func:`repro.sim.segment.segment_reason` declares
    the kernel exact for the combination.
    """
    run = Machine(protocol, config).run(trace, order=order, engine="segment")
    left = stats_signature(run)
    right = stats_signature(columnar)
    if left != right:
        return "segment vs columnar: " + _describe_divergence(left, right)
    return None


def _scan_divergence(
    trace: Trace, config: SimulationConfig, protocol: str
) -> str | None:
    """Why WTI's scan merge diverges from the inlined loop (None = ok).

    Runs the epoch family twice at the case's size — once with the
    vectorized scan merge, once forcing the retained reference loop —
    and requires identical statistics.  (The scan may legally fall
    back to the loop when it finds no fixed point; the comparison is
    then trivially clean, which is the intended contract.)
    """
    sizes = (config.cache_bytes,)
    kwargs = dict(
        block_bytes=config.block_bytes,
        associativity=config.associativity,
        order="time",
    )
    scan = run_geometry_family(
        protocol, trace, sizes, wti_merge="scan", **kwargs
    )[config.cache_bytes]
    loop = run_geometry_family(
        protocol, trace, sizes, wti_merge="loop", **kwargs
    )[config.cache_bytes]
    left = stats_signature(scan)
    right = stats_signature(loop)
    if left != right:
        return "scan merge vs inlined loop: " + _describe_divergence(
            left, right
        )
    return None


#: Order-independent counters every bus discipline must conserve for
#: the geometry-local protocols (whose outcomes never depend on the
#: cross-CPU interleaving the arbiter chooses).
_CONSERVED_FIELDS = (
    "fetch_misses",
    "data_misses",
    "dirty_victim_misses",
    "shared_loads",
    "shared_stores",
    "shared_data_misses",
    "bus_busy_cycles",
    "bus_transactions",
)


def _conserved_mismatch(
    run: SimulationResult, baseline: SimulationResult
) -> str | None:
    """First order-independent counter the two runs disagree on."""
    left = sorted(
        (operation.value, count)
        for operation, count in run.operation_counts.items()
        if count
    )
    right = sorted(
        (operation.value, count)
        for operation, count in baseline.operation_counts.items()
        if count
    )
    if left != right:
        return f"operation counts: {left!r} != {right!r}"
    for field_name in _CONSERVED_FIELDS:
        a = getattr(run, field_name)
        b = getattr(baseline, field_name)
        if a != b:
            return f"{field_name}: {a!r} != {b!r}"
    return None


def _discipline_divergence(
    trace: Trace,
    config: SimulationConfig,
    protocol: str,
    discipline: str,
    columnar: SimulationResult,
) -> str | None:
    """Why the arbitrated engine under ``discipline`` fails (None = ok).

    Every discipline's run must satisfy the conservation invariants.
    For the geometry-local protocols the ``fcfs`` arbitrated run must
    match the columnar baseline bit-for-bit, and every other
    discipline must conserve the order-independent counters — only
    clocks and waits may move with the grant order.
    """
    arbitrated_config = replace(config, bus_discipline=discipline)
    run = Machine(protocol, arbitrated_config).run(
        trace, order="time", engine="arbitrated"
    )
    if run.engine != "arbitrated":
        return (
            f"arbitrated engine not engaged (engine={run.engine!r}) "
            f"for discipline {discipline!r}"
        )
    try:
        check_result_invariants(run, trace=trace)
    except InvariantViolation as violation:
        return f"invariants under {discipline} arbitration: {violation}"
    if protocol in ONEPASS_PROTOCOLS:
        if discipline == "fcfs":
            left = stats_signature(run)
            right = stats_signature(columnar)
            if left != right:
                return (
                    "fcfs arbitrated vs columnar: "
                    + _describe_divergence(left, right)
                )
        else:
            mismatch = _conserved_mismatch(run, columnar)
            if mismatch is not None:
                return f"{discipline} vs columnar baseline: {mismatch}"
    return None


def _check_protocol(
    case: FuzzCase, protocol: str, disciplines: Sequence[str] = DISCIPLINES
) -> tuple[FuzzFailure | None, SimulationResult | None]:
    """First failure (or None) plus the columnar time-order result."""

    def failure(check: str, message: str) -> FuzzFailure:
        return FuzzFailure(
            seed=case.seed,
            shape=case.shape,
            protocol=protocol,
            check=check,
            message=message,
        )

    time_result = None
    for order in ("time", "trace"):
        columnar = _run(case.trace, case.config, protocol, order)
        legacy = _run(case.trace, case.config, protocol, order, "legacy")
        left = stats_signature(columnar)
        right = stats_signature(legacy)
        if left != right:
            return (
                failure(
                    f"engine-diff:{order}",
                    "columnar vs legacy: "
                    + _describe_divergence(left, right),
                ),
                None,
            )
        try:
            check_result_invariants(columnar, trace=case.trace)
        except InvariantViolation as violation:
            return failure(f"invariants:{order}", str(violation)), None
        if supports_onepass(
            protocol, associativity=case.config.associativity
        ):
            message = _onepass_divergence(
                case.trace, case.config, protocol, order, columnar
            )
            if message is not None:
                return failure(f"onepass-diff:{order}", message), None
        if (
            segment_reason(
                protocol,
                associativity=case.config.associativity,
                trace=case.trace,
            )
            is None
        ):
            message = _segment_divergence(
                case.trace, case.config, protocol, order, columnar
            )
            if message is not None:
                return failure(f"segment-diff:{order}", message), None
        if order == "time":
            time_result = columnar

    if protocol == "wti" and supports_onepass(
        protocol, associativity=case.config.associativity
    ):
        message = _scan_divergence(case.trace, case.config, protocol)
        if message is not None:
            return failure("scan-diff", message), None

    try:
        shadowed = oracle_run(case.trace, case.config, protocol)
    except OracleViolation as violation:
        return failure("oracle", str(violation)), None
    shadow_sig = stats_signature(shadowed)
    plain_sig = stats_signature(time_result)
    if shadow_sig != plain_sig:
        return (
            failure(
                "shadow-diff",
                "all-slow-path shadow vs fast-path columnar: "
                + _describe_divergence(shadow_sig, plain_sig),
            ),
            None,
        )

    for discipline in disciplines:
        message = _discipline_divergence(
            case.trace, case.config, protocol, discipline, time_result
        )
        if message is not None:
            return failure(f"discipline:{discipline}", message), None
    return None, time_result


def _check_model(
    case: FuzzCase, baseline: dict[str, SimulationResult]
) -> list[FuzzFailure]:
    """Model-vs-simulation processing power inside MODEL_BANDS."""
    protocols = [p for p in baseline if p in _MODEL_SCHEMES]
    if not protocols:
        return []
    dragon_result = baseline.get("dragon")
    if dragon_result is None:
        dragon_result = _run(case.trace, case.config, "dragon", "time")
    params = measure_workload_params(
        case.trace, case.config, dragon_result
    )
    bus = BusSystem()
    failures = []
    for protocol in protocols:
        simulated = baseline[protocol].processing_power
        predicted = bus.evaluate(
            _MODEL_SCHEMES[protocol], params, case.trace.cpus
        ).processing_power
        if simulated <= 0.0:
            continue
        relative_error = abs(predicted - simulated) / simulated
        band = MODEL_BANDS[protocol]
        if relative_error > band:
            failures.append(
                FuzzFailure(
                    seed=case.seed,
                    shape=case.shape,
                    protocol=protocol,
                    check="model-band",
                    message=(
                        f"model {predicted:.3f} vs simulation "
                        f"{simulated:.3f} processing power: relative "
                        f"error {relative_error:.1%} exceeds the "
                        f"{band:.0%} band"
                    ),
                )
            )
    return failures


def _failure_predicate(
    failure: FuzzFailure, config: SimulationConfig
) -> Callable[[Trace], bool] | None:
    """A pure 'does this trace still fail the same check' predicate.

    Model-band failures are statistical properties of whole workloads,
    not of any single record, so they are not minimizable.
    """
    protocol = failure.protocol
    check = failure.check
    if check.startswith("engine-diff:") or check.startswith("invariants:"):
        order = check.split(":", 1)[1]

        def predicate(trace: Trace) -> bool:
            columnar = _run(trace, config, protocol, order)
            legacy = _run(trace, config, protocol, order, "legacy")
            if stats_signature(columnar) != stats_signature(legacy):
                return True
            try:
                check_result_invariants(columnar, trace=trace)
            except InvariantViolation:
                return True
            return False

        return predicate
    if check.startswith("onepass-diff:"):
        order = check.split(":", 1)[1]

        def predicate(trace: Trace) -> bool:
            columnar = _run(trace, config, protocol, order)
            return (
                _onepass_divergence(trace, config, protocol, order, columnar)
                is not None
            )

        return predicate
    if check.startswith("segment-diff:"):
        order = check.split(":", 1)[1]

        def predicate(trace: Trace) -> bool:
            if (
                segment_reason(
                    protocol,
                    associativity=config.associativity,
                    trace=trace,
                )
                is not None
            ):
                return False
            columnar = _run(trace, config, protocol, order)
            return (
                _segment_divergence(trace, config, protocol, order, columnar)
                is not None
            )

        return predicate
    if check == "scan-diff":

        def predicate(trace: Trace) -> bool:
            return _scan_divergence(trace, config, protocol) is not None

        return predicate
    if check.startswith("discipline:"):
        discipline = check.split(":", 1)[1]

        def predicate(trace: Trace) -> bool:
            columnar = _run(trace, config, protocol, "time")
            return (
                _discipline_divergence(
                    trace, config, protocol, discipline, columnar
                )
                is not None
            )

        return predicate
    if check == "shadow-diff" or check.startswith("oracle"):
        # "oracle" (fuzzer, time order) or "oracle:<order>" (the
        # explorer replays its interleavings in trace order).
        order = check.split(":", 1)[1] if ":" in check else "time"

        def predicate(trace: Trace) -> bool:
            try:
                shadowed = oracle_run(trace, config, protocol, order=order)
            except OracleViolation:
                return True
            plain = _run(trace, config, protocol, order)
            return stats_signature(shadowed) != stats_signature(plain)

        return predicate
    return None


def minimize_failure(
    failure: FuzzFailure, case: FuzzCase, max_checks: int = 48
) -> Trace | None:
    """Shrink the failing case's trace; None if not minimizable."""
    predicate = _failure_predicate(failure, case.config)
    if predicate is None:
        return None
    return minimize_failing_trace(
        case.trace, predicate, max_checks=max_checks
    )
