"""Per-line reference state machines that shadow-check every transition.

The oracle mechanism has two halves:

* :func:`shadow_protocol` wraps a real protocol class in a dynamically
  built :class:`~repro.sim.protocols.interface.Protocol` subclass that
  leaves **every fast-path contract flag False**.  The replay engine
  therefore routes every single record through ``access()``/``flush()``
  — no inline hit probes, no static hit analysis — and the wrapper
  hands each call plus the caches' post-state to an oracle.  (Because
  the statistics must still be byte-identical to an unshadowed run,
  the shadow run doubles as a differential test of the contract flags
  themselves; :mod:`repro.verify.differential` asserts that.)

* A :class:`ProtocolOracle` per protocol maintains a *mirror* of all
  cache sets plus a version-counter model of memory, and validates
  each observed transition against the protocol's written rules: which
  operations may be charged, which line may be filled/evicted (the
  victim must be the LRU line of a full set), how remote copies may
  change, and — for the coherent protocols — that every read hit and
  every miss fill observes the latest stored version of the block
  (update-protocol copy consistency for Dragon, invalidation
  correctness for WTI).

Counters are conserved end-to-end: the oracle classifies every access
as hit/miss/uncached from its own mirror and ``finalize`` reconciles
those counts — plus the per-operation counts — with the finished
:class:`~repro.sim.machine.SimulationResult`, realising the
``hits + misses = references`` invariant independently of the engine's
own accounting.

Value model
-----------

The simulator stores no data, so "copy consistency" is checked with
version counters: every store to a block increments the block's global
version; copies and memory carry the version they last received.  For
Dragon (write-update) and WTI (write-invalidate) the protocol's whole
point is that a read hit can never observe a stale version — so the
oracle asserts ``copy version == latest version`` on every read hit
and every miss fill.  Base and Software-Flush are *incoherent by
design* under adversarial traces (that is why the paper pairs
Software-Flush with explicit flush discipline), so no value checks
apply to them.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.operations import Operation
from repro.sim.cache import Cache, LineState
from repro.sim.protocols import protocol_class
from repro.sim.protocols.interface import Protocol
from repro.trace.records import AccessType

__all__ = ["ORACLES", "OracleViolation", "ProtocolOracle", "shadow_protocol"]

_CLEAN = LineState.CLEAN
_DIRTY = LineState.DIRTY
_SHARED_CLEAN = LineState.SHARED_CLEAN
_SHARED_DIRTY = LineState.SHARED_DIRTY


class OracleViolation(AssertionError):
    """A simulator transition broke the protocol's reference rules."""

    def __init__(self, protocol: str, index: int, message: str):
        super().__init__(f"[{protocol}] access #{index}: {message}")
        self.protocol = protocol
        self.index = index
        self.detail = message


@dataclass
class _Event:
    """One observed transition, pre-diffed against the mirror."""

    cpu: int
    kind: AccessType | None  # None for FLUSH
    block: int
    pre: LineState | None
    outcome: object
    #: (block, state) lines that vanished from the issuer's set.
    removed: list = field(default_factory=list)
    #: (block, state) lines that appeared in the issuer's set.
    added: list = field(default_factory=list)
    #: (block, old, new) state changes within the issuer's set.
    changed: list = field(default_factory=list)
    #: (cpu, old, new) for the accessed block in every *other* cache.
    remote: list = field(default_factory=list)
    #: LRU block of the issuer's set before the access (None if empty).
    lru_block: int | None = None
    #: Occupancy of the issuer's set before the access.
    old_set_len: int = 0


def _name(state: LineState | None) -> str:
    return "INVALID" if state is None else state.name


class ProtocolOracle:
    """Base oracle: mirror bookkeeping, diffing, and counter checks.

    Subclasses implement ``_validate_access`` (and ``_validate_flush``
    for flush-handling protocols) in terms of the ``_expect_*``
    helpers, and declare ``legal_states`` — the only states the
    protocol may ever leave a line in.
    """

    protocol = "abstract"
    legal_states: frozenset = frozenset(
        {_CLEAN, _DIRTY, _SHARED_CLEAN, _SHARED_DIRTY}
    )
    #: Whether read hits / miss fills must observe the latest version.
    checks_value_coherence = False

    def __init__(
        self,
        caches: Sequence[Cache],
        is_shared_block: Callable[[int], bool],
    ):
        self.caches = list(caches)
        self.is_shared_block = is_shared_block
        self.n = len(self.caches)
        geometry = self.caches[0].geometry if self.caches else None
        self.associativity = geometry.associativity if geometry else 1
        self.set_mask = self.caches[0].set_mask if self.caches else 0
        self.mirror: list[list[dict[int, LineState]]] = [
            [{} for _ in range(self.set_mask + 1)] for _ in range(self.n)
        ]
        # Version model (see module docstring).
        self.latest: defaultdict[int, int] = defaultdict(int)
        self.memory: defaultdict[int, int] = defaultdict(int)
        self.copies: list[dict[int, int]] = [{} for _ in range(self.n)]
        # Conservation counters.
        self.index = 0
        self.fetch_hits = 0
        self.fetch_misses = 0
        self.data_hits = 0
        self.data_misses = 0
        self.uncached_refs = 0
        self.flushes = 0
        self.dirty_victim_misses = 0
        self.shared_data_misses = 0
        self.op_counts: Counter = Counter()
        self.steals: int = 0

    # -- failure and expectation helpers ---------------------------------

    def _fail(self, message: str) -> None:
        raise OracleViolation(self.protocol, self.index, message)

    def _expect_outcome(self, ev: _Event, operations, steal=()) -> None:
        actual = tuple(ev.outcome.operations)
        expected = tuple(operations)
        if actual != expected:
            self._fail(
                f"block {ev.block:#x}: expected operations "
                f"{[op.name for op in expected]}, got "
                f"{[op.name for op in actual]}"
            )
        actual_steal = sorted(ev.outcome.steal_from)
        if actual_steal != sorted(steal):
            self._fail(
                f"block {ev.block:#x}: expected steal_from "
                f"{sorted(steal)}, got {actual_steal}"
            )

    def _expect_hit(self, ev: _Event, expected_post: LineState) -> None:
        """The issuer's set changed by at most the accessed block's
        state, which must now be ``expected_post``."""
        if ev.removed:
            self._fail(
                f"hit on block {ev.block:#x} evicted {ev.removed}"
            )
        if ev.added:
            self._fail(
                f"hit on block {ev.block:#x} inserted {ev.added}"
            )
        for block, old, new in ev.changed:
            if block != ev.block:
                self._fail(
                    f"hit on block {ev.block:#x} changed unrelated "
                    f"block {block:#x}: {_name(old)} -> {_name(new)}"
                )
        post = self.caches[ev.cpu].peek(ev.block)
        if post is not expected_post:
            self._fail(
                f"hit on block {ev.block:#x}: expected post-state "
                f"{expected_post.name}, found {_name(post or None)}"
            )

    def _expect_fill(self, ev: _Event, fill_state: LineState):
        """The miss inserted exactly the accessed block; at most one
        (LRU, capacity-justified) eviction.  Returns the victim pair
        or None."""
        if ev.changed:
            self._fail(
                f"miss on block {ev.block:#x} changed resident lines "
                f"{[(b, _name(o), _name(nw)) for b, o, nw in ev.changed]}"
            )
        if len(ev.added) != 1 or ev.added[0][0] != ev.block:
            self._fail(
                f"miss on block {ev.block:#x}: expected exactly that "
                f"block filled, got {ev.added}"
            )
        if ev.added[0][1] is not fill_state:
            self._fail(
                f"miss fill of block {ev.block:#x}: expected state "
                f"{fill_state.name}, got {ev.added[0][1].name}"
            )
        if len(ev.removed) > 1:
            self._fail(f"miss evicted more than one line: {ev.removed}")
        if ev.removed:
            victim_block, victim_state = ev.removed[0]
            if ev.old_set_len < self.associativity:
                self._fail(
                    f"evicted block {victim_block:#x} from a set with "
                    f"{ev.old_set_len}/{self.associativity} ways used"
                )
            if victim_block != ev.lru_block:
                self._fail(
                    f"evicted block {victim_block:#x} but the LRU line "
                    f"was {ev.lru_block:#x}"
                )
            return ev.removed[0]
        return None

    def _expect_remote_unchanged(self, ev: _Event) -> None:
        for other, old, new in ev.remote:
            if old is not new:
                self._fail(
                    f"access to block {ev.block:#x} changed cpu "
                    f"{other}'s copy: {_name(old)} -> {_name(new)}"
                )

    def _expect_remote_states(
        self, ev: _Event, expected: dict[int, LineState | None]
    ) -> None:
        """Remote copies of the accessed block must match ``expected``
        (absent CPUs must be unchanged)."""
        for other, old, new in ev.remote:
            want = expected.get(other, old)
            if new is not want:
                self._fail(
                    f"block {ev.block:#x}: cpu {other}'s copy is "
                    f"{_name(new)}, expected {_name(want)}"
                )

    # -- version model ----------------------------------------------------

    def _drop_copy(self, cpu: int, block: int, state: LineState) -> None:
        """A copy left ``cpu``'s cache (eviction/invalidation/flush);
        dirty copies write their version back to memory."""
        version = self.copies[cpu].pop(block, 0)
        if state.is_dirty:
            self.memory[block] = version

    def _fill_copy(self, ev: _Event) -> None:
        """Assign the version a miss fill observes; coherent protocols
        must observe the latest stored version."""
        version = self._fill_version(ev)
        self.copies[ev.cpu][ev.block] = version
        if self.checks_value_coherence and version != self.latest[ev.block]:
            self._fail(
                f"miss fill of block {ev.block:#x} observed version "
                f"{version}, latest stored is {self.latest[ev.block]} "
                f"(stale data reached a cache)"
            )

    def _fill_version(self, ev: _Event) -> int:
        """Version the fill's supplier holds; memory by default."""
        return self.memory[ev.block]

    def _store_version(self, ev: _Event) -> int:
        """Bump the block's version for a store; returns the new
        version (the caller distributes it to the updated copies)."""
        self.latest[ev.block] += 1
        return self.latest[ev.block]

    def _check_read_hit_version(self, ev: _Event) -> None:
        if not self.checks_value_coherence:
            return
        version = self.copies[ev.cpu].get(ev.block, 0)
        if version != self.latest[ev.block]:
            self._fail(
                f"read hit on block {ev.block:#x} observed version "
                f"{version}, latest stored is {self.latest[ev.block]} "
                f"(stale copy was never updated/invalidated)"
            )

    # -- observation entry points -----------------------------------------

    def observe_access(
        self, cpu: int, kind: AccessType, block: int, outcome
    ) -> None:
        self.index += 1
        ev = self._diff(cpu, kind, block, outcome)
        uncached = self._is_uncached(kind, block)
        if kind is AccessType.INST_FETCH:
            if ev.pre is None:
                self.fetch_misses += 1
            else:
                self.fetch_hits += 1
        elif uncached:
            self.uncached_refs += 1
        elif ev.pre is None:
            self.data_misses += 1
            if self.is_shared_block(block):
                self.shared_data_misses += 1
        else:
            self.data_hits += 1
        self._validate_access(ev)
        if ev.pre is None and not uncached and ev.removed:
            if ev.removed[0][1].is_dirty:
                self.dirty_victim_misses += 1
        self.op_counts.update(ev.outcome.operations)
        self.steals += len(ev.outcome.steal_from)
        self._sync(ev)

    def observe_flush(self, cpu: int, block: int, outcome) -> None:
        self.index += 1
        self.flushes += 1
        ev = self._diff(cpu, None, block, outcome)
        self._validate_flush(ev)
        self.op_counts.update(ev.outcome.operations)
        self.steals += len(ev.outcome.steal_from)
        self._sync(ev)

    # -- diff / sync machinery ---------------------------------------------

    def _diff(self, cpu: int, kind, block: int, outcome) -> _Event:
        set_index = block & self.set_mask
        old_set = self.mirror[cpu][set_index]
        actual_set = self.caches[cpu].line_sets[set_index]
        ev = _Event(
            cpu=cpu,
            kind=kind,
            block=block,
            pre=old_set.get(block),
            outcome=outcome,
            lru_block=next(iter(old_set)) if old_set else None,
            old_set_len=len(old_set),
        )
        for resident, state in old_set.items():
            new = actual_set.get(resident)
            if new is None:
                ev.removed.append((resident, state))
            elif new is not state:
                ev.changed.append((resident, state, new))
        for resident, state in actual_set.items():
            if resident not in old_set:
                ev.added.append((resident, state))
        if len(actual_set) > self.associativity:
            self._fail(
                f"set {set_index} of cpu {cpu} holds {len(actual_set)} "
                f"lines, associativity is {self.associativity}"
            )
        for state in dict(ev.added).values():
            if state not in self.legal_states:
                self._fail(
                    f"line entered illegal state {state.name} for "
                    f"protocol {self.protocol!r}"
                )
        for _, _, new in ev.changed:
            if new not in self.legal_states:
                self._fail(
                    f"line changed to illegal state {new.name} for "
                    f"protocol {self.protocol!r}"
                )
        for other in range(self.n):
            if other == cpu:
                continue
            old = self.mirror[other][set_index].get(block)
            new = self.caches[other].line_sets[set_index].get(block)
            if old is not None or new is not None:
                ev.remote.append((other, old, new))
        return ev

    def _sync(self, ev: _Event) -> None:
        """Fold the validated transition back into the mirror (and the
        version model's drop bookkeeping)."""
        cpu, block = ev.cpu, ev.block
        set_index = block & self.set_mask
        for victim_block, victim_state in ev.removed:
            self._drop_copy(cpu, victim_block, victim_state)
        for other, old, new in ev.remote:
            if old is not None and new is None:
                self._drop_copy(other, block, old)
            self._set_mirror(other, block, new)
        self.mirror[cpu][set_index] = dict(
            self.caches[cpu].line_sets[set_index]
        )

    def _set_mirror(
        self, cpu: int, block: int, state: LineState | None
    ) -> None:
        mirror_set = self.mirror[cpu][block & self.set_mask]
        if state is None:
            mirror_set.pop(block, None)
        else:
            # Preserve the remote set's LRU order: a state change
            # assigns in place, and a (never-occurring) remote insert
            # would land at MRU like the real dict does.
            if block in mirror_set:
                mirror_set[block] = state
            else:
                mirror_set[block] = state

    # -- explorer state hooks -----------------------------------------------

    def model_snapshot(self):
        """Validation-relevant oracle state beyond the mirror and the
        version model (e.g. the hybrid oracles' independent pressure
        model), as a hashable canonical value; ``None`` when the
        standard state fully determines future verdicts.  The explorer
        encodes this into machine states and hands it back through
        :meth:`restore_model` — protocol and oracle snapshots are
        encoded *separately*, so a protocol whose private state drifts
        from the oracle's model shows up as distinct states whose
        divergent verdicts the search then reaches."""
        return None

    def restore_model(self, snapshot) -> None:
        """Adopt a state previously returned by :meth:`model_snapshot`."""
        del snapshot

    # -- hooks --------------------------------------------------------------

    def _is_uncached(self, kind: AccessType, block: int) -> bool:
        """True when the reference legally bypasses the cache."""
        del kind, block
        return False

    def _validate_access(self, ev: _Event) -> None:
        raise NotImplementedError

    def _validate_flush(self, ev: _Event) -> None:
        self._fail(
            f"protocol {self.protocol!r} must never receive FLUSH "
            f"records (handles_flush is False)"
        )

    # -- end-of-run reconciliation ------------------------------------------

    def finalize(self, result) -> None:
        """Counter conservation against the finished run: the oracle's
        independently derived hit/miss classification must reproduce
        the engine's counters exactly, and hits + misses (+ uncached)
        must equal the reference totals."""
        loads = sum(cpu.loads for cpu in result.cpus)
        stores = sum(cpu.stores for cpu in result.cpus)
        checks = [
            (
                "instruction references",
                result.instructions,
                self.fetch_hits + self.fetch_misses,
            ),
            (
                "data references",
                loads + stores,
                self.data_hits + self.data_misses + self.uncached_refs,
            ),
            ("fetch misses", result.fetch_misses, self.fetch_misses),
            ("data misses", result.data_misses, self.data_misses),
            (
                "dirty-victim misses",
                result.dirty_victim_misses,
                self.dirty_victim_misses,
            ),
            (
                "shared data misses",
                result.shared_data_misses,
                self.shared_data_misses,
            ),
            (
                "stolen cycles",
                sum(cpu.stolen_cycles for cpu in result.cpus),
                self.steals,
            ),
        ]
        if self.flushes:
            checks.append(
                (
                    "flush records",
                    sum(cpu.flushes for cpu in result.cpus),
                    self.flushes,
                )
            )
        for name, engine_value, oracle_value in checks:
            if engine_value != oracle_value:
                self._fail(
                    f"counter conservation: {name} — engine reports "
                    f"{engine_value}, oracle derived {oracle_value}"
                )
        if +Counter(result.operation_counts) != +self.op_counts:
            self._fail(
                "counter conservation: operation counts — engine "
                f"{dict(result.operation_counts)}, oracle "
                f"{dict(self.op_counts)}"
            )


# -- concrete oracles -------------------------------------------------------


class BaseOracle(ProtocolOracle):
    """Plain write-back caching: no remote effects, ever."""

    protocol = "base"
    legal_states = frozenset({_CLEAN, _DIRTY})

    def _validate_access(self, ev: _Event) -> None:
        self._expect_remote_unchanged(ev)
        store = ev.kind is AccessType.STORE
        if ev.pre is not None:
            self._expect_hit(ev, _DIRTY if store else ev.pre)
            self._expect_outcome(ev, ())
            if not store:
                self._check_read_hit_version(ev)
            elif self.checks_value_coherence:
                self.copies[ev.cpu][ev.block] = self._store_version(ev)
            return
        victim = self._expect_fill(ev, _DIRTY if store else _CLEAN)
        dirty_victim = victim is not None and victim[1].is_dirty
        self._expect_outcome(
            ev,
            (
                Operation.DIRTY_MISS_MEMORY
                if dirty_victim
                else Operation.CLEAN_MISS_MEMORY,
            ),
        )
        if self.checks_value_coherence:
            self._fill_copy(ev)
            if store:
                self.copies[ev.cpu][ev.block] = self._store_version(ev)


class SoftwareFlushOracle(BaseOracle):
    """Base semantics plus the explicit flush instruction."""

    protocol = "swflush"

    def _validate_flush(self, ev: _Event) -> None:
        self._expect_remote_unchanged(ev)
        if ev.added or ev.changed:
            self._fail(
                f"flush of block {ev.block:#x} added/changed lines: "
                f"added={ev.added} changed={ev.changed}"
            )
        if ev.pre is None:
            if ev.removed:
                self._fail(
                    f"flush of non-resident block {ev.block:#x} "
                    f"removed {ev.removed}"
                )
            self._expect_outcome(ev, (Operation.CLEAN_FLUSH,))
            return
        if ev.removed != [(ev.block, ev.pre)]:
            self._fail(
                f"flush of block {ev.block:#x} (state {ev.pre.name}) "
                f"must remove exactly that line, removed {ev.removed}"
            )
        self._expect_outcome(
            ev,
            (
                Operation.DIRTY_FLUSH
                if ev.pre.is_dirty
                else Operation.CLEAN_FLUSH,
            ),
        )


class NoCacheOracle(BaseOracle):
    """Base semantics for instructions and private data; shared data
    references bypass the cache entirely."""

    protocol = "nocache"

    def _is_uncached(self, kind: AccessType, block: int) -> bool:
        return kind is not AccessType.INST_FETCH and self.is_shared_block(
            block
        )

    def _validate_access(self, ev: _Event) -> None:
        if self._is_uncached(ev.kind, ev.block):
            self._expect_remote_unchanged(ev)
            if ev.removed or ev.added or ev.changed:
                self._fail(
                    f"uncached shared reference to block {ev.block:#x} "
                    f"touched the cache: removed={ev.removed} "
                    f"added={ev.added} changed={ev.changed}"
                )
            self._expect_outcome(
                ev,
                (
                    Operation.WRITE_THROUGH
                    if ev.kind is AccessType.STORE
                    else Operation.READ_THROUGH,
                ),
            )
            return
        super()._validate_access(ev)


class WtiOracle(ProtocolOracle):
    """Write-through-invalidate: all lines clean, stores kill remote
    copies, memory always holds the latest version."""

    protocol = "wti"
    legal_states = frozenset({_CLEAN})
    checks_value_coherence = True

    def _validate_access(self, ev: _Event) -> None:
        if ev.kind is not AccessType.STORE:
            self._expect_remote_unchanged(ev)
            if ev.pre is not None:
                self._expect_hit(ev, ev.pre)
                self._expect_outcome(ev, ())
                self._check_read_hit_version(ev)
                return
            victim = self._expect_fill(ev, _CLEAN)
            if victim is not None and victim[1].is_dirty:
                self._fail(
                    f"write-through cache evicted a dirty line "
                    f"{victim[0]:#x} ({victim[1].name})"
                )
            self._expect_outcome(ev, (Operation.CLEAN_MISS_MEMORY,))
            self._fill_copy(ev)
            return

        # Store: every remote copy of the block must be gone.
        for other, old, new in ev.remote:
            if new is not None:
                self._fail(
                    f"store to block {ev.block:#x} left cpu {other}'s "
                    f"copy alive ({_name(old)} -> {_name(new)}) — "
                    f"missing invalidation"
                )
        if ev.pre is not None:
            self._expect_hit(ev, ev.pre)
            self._expect_outcome(ev, (Operation.WRITE_THROUGH,))
        else:
            victim = self._expect_fill(ev, _CLEAN)
            if victim is not None and victim[1].is_dirty:
                self._fail(
                    f"write-through cache evicted a dirty line "
                    f"{victim[0]:#x} ({victim[1].name})"
                )
            self._expect_outcome(
                ev,
                (Operation.CLEAN_MISS_MEMORY, Operation.WRITE_THROUGH),
            )
        version = self._store_version(ev)
        # Write-through: memory observes the store immediately.
        self.memory[ev.block] = version
        self.copies[ev.cpu][ev.block] = version


class DragonOracle(ProtocolOracle):
    """Write-update snooping: broadcasts keep every copy current."""

    protocol = "dragon"
    checks_value_coherence = True

    def _validate_access(self, ev: _Event) -> None:
        holders = [other for other, old, _ in ev.remote if old is not None]
        if ev.kind is not AccessType.STORE:
            if ev.pre is not None:
                self._expect_remote_unchanged(ev)
                self._expect_hit(ev, ev.pre)
                self._expect_outcome(ev, ())
                self._check_read_hit_version(ev)
            else:
                self._validate_miss(ev, holders, store=False)
        else:
            if ev.pre is not None:
                self._validate_store_hit(ev, holders)
            else:
                self._validate_miss(ev, holders, store=True)
        self._check_block_invariants(ev)

    def _validate_store_hit(self, ev: _Event, holders: list[int]) -> None:
        if ev.pre in (_CLEAN, _DIRTY):
            if holders:
                self._fail(
                    f"block {ev.block:#x} held in exclusive state "
                    f"{ev.pre.name} by cpu {ev.cpu} while cpus "
                    f"{holders} also hold copies"
                )
            self._expect_remote_unchanged(ev)
            self._expect_hit(ev, _DIRTY)
            self._expect_outcome(ev, ())
        elif not holders:
            # A shared-state line with no actual other holders
            # silently collapses to the exclusive dirty state.
            self._expect_remote_unchanged(ev)
            self._expect_hit(ev, _DIRTY)
            self._expect_outcome(ev, ())
        else:
            self._expect_hit(ev, _SHARED_DIRTY)
            self._expect_remote_states(
                ev, {other: _SHARED_CLEAN for other in holders}
            )
            self._expect_outcome(
                ev, (Operation.WRITE_BROADCAST,), steal=holders
            )
        version = self._store_version(ev)
        self.copies[ev.cpu][ev.block] = version
        for other in holders:
            # The broadcast updates every copy in place.
            self.copies[other][ev.block] = version

    def _validate_miss(
        self, ev: _Event, holders: list[int], store: bool
    ) -> None:
        owners = [
            other
            for other, old, _ in ev.remote
            if old is not None and old.is_owner
        ]
        if len(owners) > 1:
            self._fail(
                f"block {ev.block:#x} has multiple owners before the "
                f"miss: cpus {owners}"
            )
        supplied_from_cache = bool(owners)
        if holders:
            expected_remote = {}
            for other, old, _ in ev.remote:
                if old is None:
                    continue
                if store:
                    expected_remote[other] = _SHARED_CLEAN
                elif old is _CLEAN:
                    expected_remote[other] = _SHARED_CLEAN
                elif old is _DIRTY:
                    expected_remote[other] = _SHARED_DIRTY
                else:
                    expected_remote[other] = old
            self._expect_remote_states(ev, expected_remote)
            fill_state = _SHARED_DIRTY if store else _SHARED_CLEAN
        else:
            self._expect_remote_unchanged(ev)
            fill_state = _DIRTY if store else _CLEAN
        victim = self._expect_fill(ev, fill_state)
        dirty_victim = victim is not None and victim[1].is_dirty
        miss_op = _DRAGON_MISS_OPERATION[supplied_from_cache, dirty_victim]
        if store and holders:
            self._expect_outcome(
                ev, (miss_op, Operation.WRITE_BROADCAST), steal=holders
            )
        else:
            self._expect_outcome(ev, (miss_op,))
        self._fill_copy(ev)
        if store:
            version = self._store_version(ev)
            self.copies[ev.cpu][ev.block] = version
            for other in holders:
                self.copies[other][ev.block] = version

    def _fill_version(self, ev: _Event) -> int:
        """The owner supplies the fill when one exists; memory
        otherwise.  All copies of an update-protocol block must agree,
        which :meth:`_fill_copy` then checks against ``latest``."""
        for other, old, _ in ev.remote:
            if old is not None and old.is_owner:
                return self.copies[other].get(ev.block, 0)
        return self.memory[ev.block]

    def _check_block_invariants(self, ev: _Event) -> None:
        """Post-access single-owner and exclusivity invariants for the
        accessed block (the only block whose sharing set changed)."""
        states = [
            (cpu, self.caches[cpu].peek(ev.block)) for cpu in range(self.n)
        ]
        resident = [
            (cpu, state)
            for cpu, state in states
            if state is not LineState.INVALID
        ]
        owners = [cpu for cpu, state in resident if state.is_owner]
        if len(owners) > 1:
            self._fail(
                f"block {ev.block:#x} has multiple owners after the "
                f"access: cpus {owners}"
            )
        for cpu, state in resident:
            if state in (_CLEAN, _DIRTY) and len(resident) > 1:
                self._fail(
                    f"block {ev.block:#x} is exclusive ({state.name}) "
                    f"in cpu {cpu} but {len(resident)} copies exist"
                )


_DRAGON_MISS_OPERATION = {
    (False, False): Operation.CLEAN_MISS_MEMORY,
    (False, True): Operation.DIRTY_MISS_MEMORY,
    (True, False): Operation.CLEAN_MISS_CACHE,
    (True, True): Operation.DIRTY_MISS_CACHE,
}


class HybridOracle(DragonOracle):
    """Adaptive update/invalidate snooping (the hybrid family).

    Dragon's rules, except that on a store each remote holder either
    updates in place or is invalidated according to an *independent*
    pressure model the oracle maintains from observed events alone: a
    copy that has absorbed ``k`` broadcasts without an intervening
    local use (or since its fill, for the non-resetting variant) must
    be gone after the store, all others must survive as SHARED_CLEAN
    with exactly the survivors' cycles stolen.  A simulator whose own
    counters drift — updating a copy that should have died, or killing
    one that should have lived — fails the remote-state expectation on
    the first store where the decisions differ.

    Value coherence holds through both actions: survivors receive the
    new version (update), dead copies cannot be read without a re-fetch
    from the owner or memory (invalidate), so the Dragon version checks
    apply unchanged.
    """

    protocol = "hybrid"
    #: Broadcasts a copy may absorb before the next one kills it.
    k = 4
    #: Whether a local access resets the copy's pressure to zero.
    resets_on_use = True

    def __init__(self, caches, is_shared_block):
        super().__init__(caches, is_shared_block)
        #: Independent pressure model: (cpu, block) -> count >= 1.
        self.pressure: dict[tuple[int, int], int] = {}

    # -- explorer state hooks -------------------------------------------

    def model_snapshot(self):
        return tuple(sorted(self.pressure.items()))

    def restore_model(self, snapshot) -> None:
        self.pressure = dict(snapshot)

    # -- pressure bookkeeping -------------------------------------------

    def _drop_copy(self, cpu: int, block: int, state: LineState) -> None:
        # Any copy leaving a cache (eviction, invalidation) loses its
        # pressure history.
        self.pressure.pop((cpu, block), None)
        super()._drop_copy(cpu, block, state)

    def _broadcast_decision(
        self, block: int, holders: list[int]
    ) -> tuple[list[int], list[int]]:
        """(survivors, doomed) for one observed store, advancing the
        pressure model."""
        survivors, doomed = [], []
        for holder in holders:
            key = (holder, block)
            count = self.pressure.get(key, 0) + 1
            if count >= self.k:
                doomed.append(holder)
                self.pressure.pop(key, None)
            else:
                survivors.append(holder)
                self.pressure[key] = count
        return survivors, doomed

    # -- validation -----------------------------------------------------

    def _validate_access(self, ev: _Event) -> None:
        if (
            self.resets_on_use
            and ev.kind is not AccessType.STORE
            and ev.pre is not None
        ):
            # A local read hit proves the processor still wants the
            # line; pressure restarts.
            self.pressure.pop((ev.cpu, ev.block), None)
        super()._validate_access(ev)

    def _validate_store_hit(self, ev: _Event, holders: list[int]) -> None:
        if self.resets_on_use:
            self.pressure.pop((ev.cpu, ev.block), None)
        survivors: list[int] = []
        if ev.pre in (_CLEAN, _DIRTY):
            if holders:
                self._fail(
                    f"block {ev.block:#x} held in exclusive state "
                    f"{ev.pre.name} by cpu {ev.cpu} while cpus "
                    f"{holders} also hold copies"
                )
            self._expect_remote_unchanged(ev)
            self._expect_hit(ev, _DIRTY)
            self._expect_outcome(ev, ())
        elif not holders:
            # A shared-state line with no actual other holders
            # silently collapses to the exclusive dirty state.
            self._expect_remote_unchanged(ev)
            self._expect_hit(ev, _DIRTY)
            self._expect_outcome(ev, ())
        else:
            survivors, doomed = self._broadcast_decision(ev.block, holders)
            expected: dict[int, LineState | None] = {
                other: _SHARED_CLEAN for other in survivors
            }
            expected.update({other: None for other in doomed})
            self._expect_hit(ev, _SHARED_DIRTY if survivors else _DIRTY)
            self._expect_remote_states(ev, expected)
            self._expect_outcome(
                ev, (Operation.WRITE_BROADCAST,), steal=survivors
            )
        version = self._store_version(ev)
        self.copies[ev.cpu][ev.block] = version
        for other in survivors:
            # The broadcast updates every surviving copy in place; dead
            # copies are dropped by the mirror sync.
            self.copies[other][ev.block] = version

    def _validate_miss(
        self, ev: _Event, holders: list[int], store: bool
    ) -> None:
        if not store:
            # Read and fetch misses are exactly Dragon's.
            super()._validate_miss(ev, holders, store=False)
            return
        owners = [
            other
            for other, old, _ in ev.remote
            if old is not None and old.is_owner
        ]
        if len(owners) > 1:
            self._fail(
                f"block {ev.block:#x} has multiple owners before the "
                f"miss: cpus {owners}"
            )
        supplied_from_cache = bool(owners)
        survivors: list[int] = []
        if holders:
            # The fill's snoop demotions and the follow-up broadcast
            # fold into one observable transition per holder: update
            # to SHARED_CLEAN or death.
            survivors, doomed = self._broadcast_decision(ev.block, holders)
            expected: dict[int, LineState | None] = {
                other: _SHARED_CLEAN for other in survivors
            }
            expected.update({other: None for other in doomed})
            self._expect_remote_states(ev, expected)
            fill_state = _SHARED_DIRTY if survivors else _DIRTY
        else:
            self._expect_remote_unchanged(ev)
            fill_state = _DIRTY
        victim = self._expect_fill(ev, fill_state)
        dirty_victim = victim is not None and victim[1].is_dirty
        miss_op = _DRAGON_MISS_OPERATION[supplied_from_cache, dirty_victim]
        if holders:
            self._expect_outcome(
                ev, (miss_op, Operation.WRITE_BROADCAST), steal=survivors
            )
        else:
            self._expect_outcome(ev, (miss_op,))
        self._fill_copy(ev)
        version = self._store_version(ev)
        self.copies[ev.cpu][ev.block] = version
        for other in survivors:
            self.copies[other][ev.block] = version


class Hybrid2Oracle(HybridOracle):
    protocol = "hybrid-2"
    k = 2
    resets_on_use = True


class Hybrid4Oracle(HybridOracle):
    protocol = "hybrid-4"
    k = 4
    resets_on_use = True


class HybridLimitOracle(HybridOracle):
    protocol = "hybrid-limit"
    k = 3
    resets_on_use = False


class DirectoryOracle(ProtocolOracle):
    """Full-map write-invalidate directory: stores leave exactly one
    (DIRTY) copy; a dirty owner is written back when memory supplies a
    later miss.

    Unlike Dragon, ``CLEAN`` here is a shareable read copy, not an
    exclusive state — the invariant is only that a DIRTY copy is the
    *sole* copy of its block.
    """

    protocol = "directory"
    legal_states = frozenset({_CLEAN, _DIRTY})
    checks_value_coherence = True

    def _validate_access(self, ev: _Event) -> None:
        if ev.kind is AccessType.STORE:
            self._validate_store(ev)
        else:
            self._validate_read(ev)
        self._check_block_invariants(ev)

    def _validate_read(self, ev: _Event) -> None:
        if ev.pre is not None:
            self._expect_remote_unchanged(ev)
            self._expect_hit(ev, ev.pre)
            self._expect_outcome(ev, ())
            self._check_read_hit_version(ev)
            return
        owner = self._owner_writeback(ev)
        # Memory supplies the fill; a dirty owner is downgraded to a
        # clean read copy as part of the transfer, nobody else moves.
        if owner is not None:
            self._expect_remote_states(ev, {owner: _CLEAN})
        else:
            self._expect_remote_unchanged(ev)
        victim = self._expect_fill(ev, _CLEAN)
        self._expect_outcome(ev, (self._miss_operation(victim),))
        self._fill_copy(ev)

    def _validate_store(self, ev: _Event) -> None:
        holders = [other for other, old, _ in ev.remote if old is not None]
        # Invalidation correctness: after any store, no other cache may
        # still hold the block.
        for other, old, new in ev.remote:
            if new is not None:
                self._fail(
                    f"store to block {ev.block:#x} left cpu {other}'s "
                    f"copy alive ({_name(old)} -> {_name(new)}) — "
                    f"missing invalidation"
                )
        if ev.pre is not None:
            self._expect_hit(ev, _DIRTY)
            self._expect_outcome(
                ev, (Operation.INVALIDATE,) if holders else ()
            )
        else:
            self._owner_writeback(ev)
            victim = self._expect_fill(ev, _DIRTY)
            miss_op = self._miss_operation(victim)
            self._expect_outcome(
                ev,
                (miss_op, Operation.INVALIDATE) if holders else (miss_op,),
            )
            self._fill_copy(ev)
        self.copies[ev.cpu][ev.block] = self._store_version(ev)

    def _owner_writeback(self, ev: _Event) -> int | None:
        """Memory observes the dirty owner's version before it serves
        the miss (the write-back is part of the transfer); returns the
        owner CPU or None."""
        owners = [
            other
            for other, old, _ in ev.remote
            if old is not None and old.is_owner
        ]
        if len(owners) > 1:
            self._fail(
                f"block {ev.block:#x} has multiple owners before the "
                f"miss: cpus {owners}"
            )
        if not owners:
            return None
        owner = owners[0]
        self.memory[ev.block] = self.copies[owner].get(ev.block, 0)
        return owner

    def _miss_operation(self, victim) -> Operation:
        if victim is not None and victim[1].is_dirty:
            return Operation.DIRTY_MISS_MEMORY
        return Operation.CLEAN_MISS_MEMORY

    def _check_block_invariants(self, ev: _Event) -> None:
        """Post-access: a DIRTY copy is the sole copy of its block."""
        resident = [
            (cpu, self.caches[cpu].peek(ev.block))
            for cpu in range(self.n)
            if self.caches[cpu].peek(ev.block) is not LineState.INVALID
        ]
        dirty = [cpu for cpu, state in resident if state is _DIRTY]
        if len(dirty) > 1:
            self._fail(
                f"block {ev.block:#x} is DIRTY in several caches after "
                f"the access: cpus {dirty}"
            )
        if dirty and len(resident) > 1:
            self._fail(
                f"block {ev.block:#x} is DIRTY in cpu {dirty[0]} but "
                f"{len(resident)} copies exist"
            )


#: Protocol name -> oracle class.  The paper's four schemes plus the
#: Base, directory, and hybrid extensions.
ORACLES: dict[str, type[ProtocolOracle]] = {
    oracle.protocol: oracle
    for oracle in (
        BaseOracle,
        SoftwareFlushOracle,
        NoCacheOracle,
        WtiOracle,
        DragonOracle,
        Hybrid2Oracle,
        Hybrid4Oracle,
        HybridLimitOracle,
        DirectoryOracle,
    )
}


def shadow_protocol(
    protocol: str | type[Protocol], sink: list | None = None
) -> type[Protocol]:
    """A Protocol subclass that runs ``protocol`` under oracle shadow.

    Every fast-path contract flag is left at its False default, so the
    replay engine routes *all* records through the wrapper; each call
    is forwarded to the wrapped protocol and then validated by the
    oracle against the caches' post-state.  Oracle violations surface
    as :class:`OracleViolation` raised out of ``Machine.run``.

    Args:
        protocol: registry name or Protocol subclass; the oracle is
            chosen by the class's ``name`` (so deliberately broken
            subclasses — mutation tests — are checked against the
            rules of the protocol they claim to be).
        sink: optional list; each constructed oracle instance is
            appended so callers can reach it after ``Machine.run``.
    """
    inner_class = (
        protocol_class(protocol) if isinstance(protocol, str) else protocol
    )
    try:
        oracle_class = ORACLES[inner_class.name]
    except KeyError:
        raise ValueError(
            f"no oracle for protocol {inner_class.name!r}; have "
            f"{sorted(ORACLES)}"
        ) from None

    class ShadowedProtocol(Protocol):
        name = inner_class.name
        handles_flush = inner_class.handles_flush
        # All fast-path contract flags intentionally stay False: the
        # engine must call access()/flush() for every record so the
        # oracle observes every transition.

        def __init__(self, caches, is_shared_block):
            super().__init__(caches, is_shared_block)
            self._inner = inner_class(caches, is_shared_block)
            self.oracle = oracle_class(caches, is_shared_block)
            if sink is not None:
                sink.append(self.oracle)

        @property
        def stats(self):
            return getattr(self._inner, "stats", None)

        def access(self, cpu, kind, block):
            outcome = self._inner.access(cpu, kind, block)
            self.oracle.observe_access(cpu, kind, block, outcome)
            return outcome

        def flush(self, cpu, block):
            outcome = self._inner.flush(cpu, block)
            self.oracle.observe_flush(cpu, block, outcome)
            return outcome

    ShadowedProtocol.__name__ = f"Shadowed({inner_class.__name__})"
    ShadowedProtocol.__qualname__ = ShadowedProtocol.__name__
    return ShadowedProtocol
