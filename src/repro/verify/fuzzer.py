"""Seeded adversarial trace generator for the differential harness.

:mod:`repro.trace.synthetic` generates *plausible* workloads — the
structural features the paper measures.  The fuzzer generates
*hostile* ones: reference patterns chosen to hit the corners of the
replay engines and the protocols rather than the middle of the
parameter space.  Every case is a pure function of its seed, so any
failure reproduces from ``(seed, scale)`` alone.

Each seed picks one shape:

``pingpong``
    every CPU hammers one or two shared lines with a load/store mix —
    maximal broadcast/invalidation traffic, maximal clock coupling.
``hot-line``
    one shared line takes about half of all data references; the rest
    is a thin random private stream.
``migratory``
    a small object is read then written by one CPU, then ownership
    rotates to the next — the classic migratory-sharing pattern that
    exercises owner hand-off (Dragon SHARED_DIRTY chains).
``set-conflict``
    addresses strided by exactly ``sets * block_bytes`` so more blocks
    than the associativity collide in one set — continuous evictions,
    dirty victims, and (for Dragon) evictions of owner lines.
``single-cpu``
    the degenerate 1-CPU machine: no sharing is possible, but every
    bookkeeping path (flushes, evictions, the n==1 replay loop) runs.
``max-cpus``
    16 CPUs with short streams and heavy shared stores — broadcast
    fan-out and steal accounting at the widest machine this repo runs.
``random-soup``
    uniformly random records over a deliberately tiny address space
    (maximal collisions), all four access kinds including FLUSH at
    arbitrary addresses (flushing non-resident and never-shared blocks
    is legal and must be handled).
``workload-like``
    a randomised :class:`~repro.trace.synthetic.TraceConfig` through
    the real generator — the only shape with workload structure, and
    therefore the only one the analytical model is compared against
    (``model_comparable=True``).

Each case also randomises the cache geometry (small caches force
evictions; associativity 1/2/4; block size 16/32) and the shared
region bounds — sometimes deliberately *not* block-aligned, which
stresses the byte-range vs block-range rounding at the region edges.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.sim.machine import SimulationConfig
from repro.trace.records import (
    ADDRESS_DTYPE,
    CPU_DTYPE,
    KIND_DTYPE,
    AddressRange,
    Trace,
)
from repro.trace.synthetic import TraceConfig, generate_trace

__all__ = [
    "SHAPES",
    "FuzzCase",
    "generate_case",
    "validate_scale",
    "validate_seed_count",
]

_FETCH, _LOAD, _STORE, _FLUSH = 0, 1, 2, 3


def validate_scale(scale: float) -> float:
    """The trace-length scale factor must be a positive finite number
    (a zero or negative scale generates no records and a NaN/inf one
    breaks the record-count arithmetic)."""
    import math

    if not math.isfinite(scale) or scale <= 0:
        raise ValueError(
            f"scale must be a positive finite number, got {scale}"
        )
    return scale


def validate_seed_count(seeds: int) -> int:
    """A fuzz sweep's seed count must be non-negative (0 = no-op)."""
    if seeds < 0:
        raise ValueError(
            f"seeds must be >= 0 (0 runs nothing), got {seeds}"
        )
    return seeds

#: Shape names, in the order the seed RNG indexes them.
SHAPES = (
    "pingpong",
    "hot-line",
    "migratory",
    "set-conflict",
    "single-cpu",
    "max-cpus",
    "random-soup",
    "workload-like",
)


@dataclass(frozen=True)
class FuzzCase:
    """One fuzzed workload: a trace plus the machine it runs on."""

    seed: int
    shape: str
    trace: Trace
    config: SimulationConfig
    #: True when the trace has enough workload structure for the
    #: analytical-model comparison to be meaningful.
    model_comparable: bool = False


class _Emitter:
    """Collects records as plain int lists, builds the Trace once."""

    def __init__(self) -> None:
        self.cpu: list[int] = []
        self.kind: list[int] = []
        self.address: list[int] = []

    def emit(self, cpu: int, kind: int, address: int) -> None:
        self.cpu.append(cpu)
        self.kind.append(kind)
        self.address.append(address)

    def trace(
        self, name: str, cpus: int, shared: AddressRange
    ) -> Trace:
        return Trace.from_arrays(
            name=name,
            cpus=cpus,
            shared_region=shared,
            cpu=np.asarray(self.cpu, dtype=CPU_DTYPE),
            kind=np.asarray(self.kind, dtype=KIND_DTYPE),
            address=np.asarray(self.address, dtype=ADDRESS_DTYPE),
        )


def _geometry(rng: random.Random) -> SimulationConfig:
    """A small random cache geometry (always a legal power-of-two set
    count).  Small caches are deliberate: they force evictions."""
    cache_bytes = rng.choice((512, 1024, 4096, 16384))
    block_bytes = rng.choice((16, 32))
    associativity = rng.choice((1, 2, 4))
    return SimulationConfig(
        cache_bytes=cache_bytes,
        block_bytes=block_bytes,
        associativity=associativity,
    )


def _shared_bounds(
    rng: random.Random, base: int, blocks: int, block_bytes: int
) -> AddressRange:
    """Shared region over ``blocks`` blocks starting at ``base``;
    sometimes nudged off block alignment to stress edge rounding."""
    start = base
    stop = base + blocks * block_bytes
    if rng.random() < 0.3:
        start += rng.randrange(block_bytes)
    if rng.random() < 0.3:
        stop -= rng.randrange(block_bytes)
    return AddressRange(start, max(stop, start))


def _data_kind(rng: random.Random, store_probability: float) -> int:
    return _STORE if rng.random() < store_probability else _LOAD


def _scaled(rng: random.Random, low: int, high: int, scale: float) -> int:
    return max(1, int(rng.randint(low, high) * scale))


# -- shape builders ------------------------------------------------------
#
# Each builder returns (trace, config, model_comparable).  Address
# layout convention: code at 0x0000 per-CPU pages, private data at
# 0x100000 per-CPU pages, shared data at 0x800000.

_CODE_BASE = 0x0000
_CODE_BYTES_PER_CPU = 0x4000
_PRIVATE_BASE = 0x100000
_PRIVATE_BYTES_PER_CPU = 0x8000
_SHARED_BASE = 0x800000


def _code_address(rng: random.Random, cpu: int, span: int = 64) -> int:
    return (
        _CODE_BASE
        + cpu * _CODE_BYTES_PER_CPU
        + rng.randrange(span) * 4
    )


def _private_address(rng: random.Random, cpu: int, blocks: int = 64) -> int:
    return (
        _PRIVATE_BASE
        + cpu * _PRIVATE_BYTES_PER_CPU
        + rng.randrange(blocks * 16)
    )


def _pingpong(rng, scale):
    config = _geometry(rng)
    cpus = rng.choice((2, 3, 4, 8))
    hot_lines = rng.choice((1, 2))
    shared = _shared_bounds(
        rng, _SHARED_BASE, hot_lines, config.block_bytes
    )
    out = _Emitter()
    total = _scaled(rng, 400, 1200, scale)
    store_probability = rng.uniform(0.3, 0.7)
    for index in range(total):
        cpu = index % cpus
        out.emit(cpu, _FETCH, _code_address(rng, cpu, span=8))
        address = _SHARED_BASE + rng.randrange(
            hot_lines * config.block_bytes
        )
        out.emit(cpu, _data_kind(rng, store_probability), address)
        if rng.random() < 0.05:
            out.emit(cpu, _FLUSH, address)
    return out.trace("fuzz-pingpong", cpus, shared), config, False


def _hot_line(rng, scale):
    config = _geometry(rng)
    cpus = rng.choice((2, 4, 6))
    shared = _shared_bounds(rng, _SHARED_BASE, 8, config.block_bytes)
    out = _Emitter()
    total = _scaled(rng, 500, 1500, scale)
    for _ in range(total):
        cpu = rng.randrange(cpus)
        out.emit(cpu, _FETCH, _code_address(rng, cpu))
        if rng.random() < 0.5:
            # The hot line: first block of the shared region.
            address = _SHARED_BASE + rng.randrange(config.block_bytes)
            out.emit(cpu, _data_kind(rng, 0.4), address)
        else:
            out.emit(cpu, _data_kind(rng, 0.3), _private_address(rng, cpu))
    return out.trace("fuzz-hot-line", cpus, shared), config, False


def _migratory(rng, scale):
    config = _geometry(rng)
    cpus = rng.choice((2, 3, 4))
    object_blocks = rng.choice((1, 2, 4))
    shared = _shared_bounds(
        rng, _SHARED_BASE, object_blocks, config.block_bytes
    )
    out = _Emitter()
    rounds = _scaled(rng, 20, 80, scale)
    flush_on_handoff = rng.random() < 0.5
    owner = 0
    for _ in range(rounds):
        # The owner reads the whole object, then writes it, then hands
        # off — each phase interleaved with fetches.
        for phase_kind in (_LOAD, _STORE):
            for block in range(object_blocks):
                out.emit(owner, _FETCH, _code_address(rng, owner, span=4))
                address = (
                    _SHARED_BASE
                    + block * config.block_bytes
                    + rng.randrange(config.block_bytes)
                )
                out.emit(owner, phase_kind, address)
        if flush_on_handoff:
            for block in range(object_blocks):
                out.emit(
                    owner, _FLUSH, _SHARED_BASE + block * config.block_bytes
                )
        owner = (owner + 1) % cpus
    return out.trace("fuzz-migratory", cpus, shared), config, False


def _set_conflict(rng, scale):
    config = _geometry(rng)
    geometry = config.geometry
    stride = geometry.sets * geometry.block_bytes
    cpus = rng.choice((1, 2, 4))
    # More colliding blocks than ways: continuous evictions.
    colliding = geometry.associativity + rng.choice((1, 2, 4))
    shared_blocks = 4
    shared = _shared_bounds(
        rng, _SHARED_BASE, shared_blocks, config.block_bytes
    )
    out = _Emitter()
    total = _scaled(rng, 400, 1000, scale)
    for index in range(total):
        cpu = index % cpus
        out.emit(cpu, _FETCH, _code_address(rng, cpu, span=4))
        way = rng.randrange(colliding)
        if rng.random() < 0.3:
            # Shared-region references collide too (same set by
            # construction when stride divides the shared base).
            address = _SHARED_BASE + rng.randrange(
                shared_blocks * config.block_bytes
            )
        else:
            address = (
                _PRIVATE_BASE
                + cpu * _PRIVATE_BYTES_PER_CPU
                + way * stride
                + rng.randrange(config.block_bytes)
            )
        out.emit(cpu, _data_kind(rng, 0.5), address)
    return out.trace("fuzz-set-conflict", cpus, shared), config, False


def _single_cpu(rng, scale):
    config = _geometry(rng)
    shared = _shared_bounds(rng, _SHARED_BASE, 8, config.block_bytes)
    out = _Emitter()
    total = _scaled(rng, 300, 900, scale)
    for _ in range(total):
        out.emit(0, _FETCH, _code_address(rng, 0))
        roll = rng.random()
        if roll < 0.1:
            out.emit(
                0, _FLUSH,
                _SHARED_BASE + rng.randrange(8 * config.block_bytes),
            )
        elif roll < 0.5:
            out.emit(
                0, _data_kind(rng, 0.4),
                _SHARED_BASE + rng.randrange(8 * config.block_bytes),
            )
        else:
            out.emit(0, _data_kind(rng, 0.4), _private_address(rng, 0))
    return out.trace("fuzz-single-cpu", 1, shared), config, False


def _max_cpus(rng, scale):
    config = _geometry(rng)
    cpus = 16
    shared = _shared_bounds(rng, _SHARED_BASE, 4, config.block_bytes)
    out = _Emitter()
    per_cpu = _scaled(rng, 30, 120, scale)
    for index in range(per_cpu * cpus):
        cpu = index % cpus
        out.emit(cpu, _FETCH, _code_address(rng, cpu, span=4))
        address = _SHARED_BASE + rng.randrange(4 * config.block_bytes)
        out.emit(cpu, _data_kind(rng, 0.6), address)
    return out.trace("fuzz-max-cpus", cpus, shared), config, False


def _random_soup(rng, scale):
    config = _geometry(rng)
    cpus = rng.choice((1, 2, 3, 4, 6))
    shared_blocks = rng.choice((2, 8, 32))
    shared = _shared_bounds(
        rng, _SHARED_BASE, shared_blocks, config.block_bytes
    )
    # A tiny address universe maximises aliasing across every region.
    universe = [_code_address(rng, cpu, span=16) for cpu in range(cpus)]
    universe += [
        _private_address(rng, cpu, blocks=8) for cpu in range(cpus)
    ] * 2
    universe += [
        _SHARED_BASE + rng.randrange(shared_blocks * config.block_bytes)
        for _ in range(8)
    ]
    out = _Emitter()
    total = _scaled(rng, 400, 1200, scale)
    for _ in range(total):
        cpu = rng.randrange(cpus)
        roll = rng.random()
        if roll < 0.35:
            kind = _FETCH
        elif roll < 0.60:
            kind = _LOAD
        elif roll < 0.90:
            kind = _STORE
        else:
            kind = _FLUSH
        out.emit(cpu, kind, rng.choice(universe))
    return out.trace("fuzz-random-soup", cpus, shared), config, False


def _workload_like(rng, scale):
    trace_config = TraceConfig(
        cpus=rng.choice((2, 3, 4)),
        records_per_cpu=_scaled(rng, 1200, 2500, scale),
        ls=rng.uniform(0.15, 0.45),
        shd=rng.uniform(0.05, 0.40),
        shared_write_fraction=rng.uniform(0.15, 0.50),
        readonly_section_fraction=rng.uniform(0.0, 0.6),
        section_length_mean=rng.randint(4, 24),
        shared_objects=rng.choice((8, 32, 64)),
        object_blocks=rng.choice((1, 2, 4)),
        private_working_set=rng.choice((64, 256)),
        private_locality=rng.uniform(0.95, 0.99),
        loop_iterations_mean=rng.randint(40, 160),
        seed=rng.randrange(2**31),
    )
    # The model comparison assumes the paper's machine: 16-byte blocks
    # and a cache in the simulated size range.
    config = SimulationConfig(
        cache_bytes=rng.choice((16384, 65536)),
        block_bytes=16,
        associativity=2,
    )
    trace = generate_trace(trace_config, name="fuzz-workload-like")
    return trace, config, True


_BUILDERS = {
    "pingpong": _pingpong,
    "hot-line": _hot_line,
    "migratory": _migratory,
    "set-conflict": _set_conflict,
    "single-cpu": _single_cpu,
    "max-cpus": _max_cpus,
    "random-soup": _random_soup,
    "workload-like": _workload_like,
}


def generate_case(seed: int, scale: float = 1.0) -> FuzzCase:
    """The fuzz case for ``seed`` — deterministic, shape chosen by the
    seed itself.

    Args:
        seed: master seed; same seed (and scale), same case.
        scale: record-count multiplier; ``--smoke`` runs use < 1.
    """
    validate_scale(scale)
    # Knuth multiplicative scrambling decorrelates consecutive seeds so
    # adjacent seeds land on different shapes.
    rng = random.Random((seed * 2654435761) % 2**32)
    shape = SHAPES[rng.randrange(len(SHAPES))]
    trace, config, model_comparable = _BUILDERS[shape](rng, scale)
    return FuzzCase(
        seed=seed,
        shape=shape,
        trace=trace,
        config=config,
        model_comparable=model_comparable,
    )
