"""Bounded exhaustive state-space exploration of the protocols.

The fuzz/differential subsystem samples paths through a protocol's
state space; this module *enumerates* them.  For a small model — a
handful of CPUs, one or two cache lines per set, a bounded block
alphabet — every protocol in :mod:`repro.sim.protocols` is a finite
state machine, and breadth-first search over its reachable states
visits each one exactly once.  Every transition is validated by the
per-line :class:`~repro.verify.oracles.ProtocolOracle` as it is taken,
so within the explored bounds the per-step coherence rules hold on
**all** interleavings, not just sampled ones (the approach of
"Modeling a Cache Coherence Protocol with the Guarded Action
Language", arXiv:1803.10323, applied to this repo's executable
protocols instead of a separate formal model).

Canonical machine states
------------------------

A machine state is canonically encoded as a hashable tuple of

* every cache set's ``(block, state)`` pairs **in LRU order** (the
  insertion order of the underlying dict — the replacement decision is
  part of protocol behaviour, so two states with different LRU orders
  are different states), and
* the oracle's version model per block — ``latest``, ``memory``, and
  each CPU's copy version — with the version values renumbered
  order-preservingly per block (``0, 1, 2, ...`` over the distinct
  values, ascending).  Version counters grow without bound along a
  path, but only their equality pattern and the fact that ``latest``
  is the maximum ever matter, so the renumbering collapses the state
  space to a finite one without changing any future oracle verdict.

Most protocol objects carry no transition-relevant state beyond the
caches (their ``stats`` and the directory's ``_invalidated`` set feed
counters only), so a fresh protocol instance over reconstructed caches
resumes any state exactly.  Protocols that do (the hybrid family's
pressure counters) declare it through ``Protocol.snapshot`` /
``restore``, and the matching oracle model state through
``ProtocolOracle.model_snapshot`` / ``restore_model``; both snapshots
are further components of the canonical state.

What is (and is not) proven
---------------------------

Within the bounds — CPUs, cache geometry, block alphabet, and search
depth — every reachable transition satisfies the oracle's rules, and
(budget permitting) every reached state's shortest path replays
identically through the columnar, legacy, and (where the gate admits
it) segment engines while satisfying the global conservation
invariants.  Nothing is claimed beyond the bounds: a bug that needs
three CPUs is invisible at two, and one that needs a deeper
interleaving is invisible below its depth.  The fuzzer keeps covering
the large-model regime; the explorer converts the small-model regime
from statistical confidence into an exhaustive guarantee.

Counterexamples
---------------

A violation is reported as the shortest action path that triggers it,
re-emitted as a concrete columnar :class:`~repro.trace.records.Trace`
(replayable by ``Machine.run(order="trace")``), shrunk further by
:func:`~repro.verify.minimize.minimize_failing_trace`, and written as
a standard ``swcc-fuzz-failure`` JSON artifact so ``swcc fuzz
--replay`` reproduces it without the explorer.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.sim.cache import Cache, LineState
from repro.sim.machine import Machine, SimulationConfig
from repro.sim.protocols import protocol_class
from repro.sim.segment import segment_reason
from repro.trace.records import (
    ADDRESS_DTYPE,
    CPU_DTYPE,
    KIND_DTYPE,
    AccessType,
    AddressRange,
    Trace,
)
from repro.verify.differential import (
    FuzzFailure,
    _describe_divergence,
    oracle_run,
    stats_signature,
)
from repro.verify.invariants import (
    InvariantViolation,
    check_result_invariants,
)
from repro.verify.minimize import minimize_failing_trace
from repro.verify.oracles import ORACLES, OracleViolation

__all__ = [
    "ExploreBounds",
    "ExploreReport",
    "ExploreViolation",
    "explore_protocol",
    "validate_conformance",
    "validate_cpus",
    "validate_depth",
    "validate_lines",
    "validate_max_states",
    "validate_sets",
    "violation_predicate",
    "write_counterexample",
]

_BLOCK_BYTES = 16
#: Block-number bases (addresses are ``block * 16``); mirrors the
#: fuzzer's region layout so artifacts look familiar.
_SHARED_BASE_BLOCK = 0x80000
_PRIVATE_BASE_BLOCK = 0x10000


# -- bounds validation (shared by the API and the CLI) -------------------


def validate_cpus(cpus: int) -> int:
    """CPUs in the small model: at least 2 (coherence needs sharing),
    at most 8 (the action alphabet, and with it the branching factor,
    grows linearly; past 8 the 'small model' claim is no longer
    honest)."""
    if not 2 <= cpus <= 8:
        raise ValueError(
            f"cpus must be in [2, 8] (coherence needs at least two "
            f"sharers; more than eight is no longer a small model), "
            f"got {cpus}"
        )
    return cpus


def validate_lines(lines: int) -> int:
    """Cache lines per set (the associativity): 1 to 4."""
    if not 1 <= lines <= 4:
        raise ValueError(
            f"lines per set must be in [1, 4], got {lines}"
        )
    return lines


def validate_sets(sets: int) -> int:
    """Cache sets: a power of two between 1 and 4."""
    if sets not in (1, 2, 4):
        raise ValueError(
            f"sets must be 1, 2, or 4 (a power of two keeps the "
            f"set-index arithmetic exact), got {sets}"
        )
    return sets


def validate_depth(depth: int) -> int:
    """Search depth: at least 1 (depth 0 explores nothing)."""
    if depth < 1:
        raise ValueError(
            f"depth must be >= 1 (a depth-0 search visits no "
            f"transition), got {depth}"
        )
    return depth


def validate_max_states(max_states: int) -> int:
    """State budget: at least 1; a negative budget is nonsensical."""
    if max_states < 1:
        raise ValueError(
            f"max-states must be >= 1 (the budget bounds the visited "
            f"set), got {max_states}"
        )
    return max_states


def validate_conformance(conformance: int) -> int:
    """Cross-engine conformance budget: >= 0 (0 disables it)."""
    if conformance < 0:
        raise ValueError(
            f"conformance must be >= 0 (0 = skip cross-engine "
            f"replays), got {conformance}"
        )
    return conformance


@dataclass(frozen=True)
class ExploreBounds:
    """The small model: machine width, geometry, and search budget.

    Attributes:
        cpus: processors in the model (2-8).
        lines: cache lines per set, i.e. the associativity (1-4).
        sets: cache sets (1, 2, or 4).
        depth: BFS depth bound — the longest interleaving explored.
        max_states: visited-state budget; the search reports itself
            truncated (not exhaustive) when it runs out.
        conformance: how many discovered states also get a
            cross-engine replay of their shortest path (columnar vs
            legacy vs segment where exact, plus the global
            invariants); states are checked in BFS discovery order.
    """

    cpus: int = 2
    lines: int = 1
    sets: int = 1
    depth: int = 8
    max_states: int = 200_000
    conformance: int = 256

    def __post_init__(self) -> None:
        validate_cpus(self.cpus)
        validate_lines(self.lines)
        validate_sets(self.sets)
        validate_depth(self.depth)
        validate_max_states(self.max_states)
        validate_conformance(self.conformance)

    @property
    def config(self) -> SimulationConfig:
        """The machine geometry the bounds describe."""
        return SimulationConfig(
            cache_bytes=self.sets * self.lines * _BLOCK_BYTES,
            block_bytes=_BLOCK_BYTES,
            associativity=self.lines,
        )

    @property
    def shared_blocks(self) -> tuple[int, ...]:
        """``lines + 1`` shared blocks per set — one more than the
        ways, so evictions of shared lines are reachable."""
        count = self.sets * (self.lines + 1)
        return tuple(range(_SHARED_BASE_BLOCK, _SHARED_BASE_BLOCK + count))

    @property
    def private_blocks(self) -> tuple[int, ...]:
        """One private block per set (exercises the uncached-vs-cached
        split and instruction fetches)."""
        return tuple(
            range(_PRIVATE_BASE_BLOCK, _PRIVATE_BASE_BLOCK + self.sets)
        )

    @property
    def shared_region(self) -> AddressRange:
        blocks = self.shared_blocks
        return AddressRange(
            blocks[0] * _BLOCK_BYTES, (blocks[-1] + 1) * _BLOCK_BYTES
        )


@dataclass(frozen=True)
class ExploreViolation:
    """A violated transition or a diverging frontier state.

    ``failure.check`` is ``oracle:trace`` for a per-step oracle
    violation, or one of ``engine-diff:trace`` / ``invariants:trace``
    / ``segment-diff:trace`` for a frontier-conformance failure; the
    trace replays the shortest path that triggers it.
    """

    failure: FuzzFailure
    trace: Trace


@dataclass
class ExploreReport:
    """What one protocol's exploration covered and concluded."""

    protocol: str
    bounds: ExploreBounds
    states: int = 0
    edges: int = 0
    depth_reached: int = 0
    #: States whose successors were *not* expanded because they sit at
    #: the depth bound (the search horizon).
    frontier: int = 0
    #: True when the state budget ran out before the reachable set
    #: (within the depth bound) was closed.
    truncated: bool = False
    conformance_checked: int = 0
    violation: ExploreViolation | None = None
    wall_s: float = 0.0
    actions: int = 0

    @property
    def exhaustive(self) -> bool:
        """True when every state reachable within the depth bound was
        visited and none broke a rule."""
        return not self.truncated and self.violation is None


# -- canonical state encoding --------------------------------------------


def _encode_state(caches, protocol, oracle, blocks) -> tuple:
    """Hashable canonical encoding of (caches, protocol state,
    version model, oracle model state).

    Protocols and oracles carrying transition state beyond the caches
    (the hybrid family's pressure counters) contribute their
    :meth:`~repro.sim.protocols.interface.Protocol.snapshot` /
    ``model_snapshot`` values as *separate* components — deliberately
    not one copied into the other, so a protocol whose private state
    drifts from the oracle's independent model produces distinct
    states whose divergent transitions the search then visits.
    """
    cache_part = tuple(
        tuple(
            tuple((block, int(state)) for block, state in line_set.items())
            for line_set in cache.line_sets
        )
        for cache in caches
    )
    version_part = []
    for block in blocks:
        raw = [oracle.latest[block], oracle.memory[block]] + [
            oracle.copies[cpu].get(block) for cpu in range(oracle.n)
        ]
        rank = {
            value: index
            for index, value in enumerate(
                sorted({v for v in raw if v is not None})
            )
        }
        version_part.append(
            tuple(None if v is None else rank[v] for v in raw)
        )
    return (
        cache_part,
        tuple(version_part),
        protocol.snapshot(),
        oracle.model_snapshot(),
    )


def _decode_state(state, bounds, oracle_class, protocol_cls, blocks):
    """Rebuild live caches, a fresh protocol, and a primed oracle from
    a canonical encoding.

    The canonical version ranks are usable directly as versions: the
    renumbering preserves order, so ``latest`` stays the per-block
    maximum and the next store's ``latest + 1`` is fresh.
    """
    cache_part, version_part, protocol_part, model_part = state
    geometry = bounds.config.geometry
    caches = [Cache(geometry) for _ in range(bounds.cpus)]
    for cache, sets in zip(caches, cache_part):
        for line_set, encoded in zip(cache.line_sets, sets):
            for block, state_value in encoded:
                line_set[block] = LineState(state_value)
    shared = set(bounds.shared_blocks)
    is_shared = shared.__contains__
    protocol = protocol_cls(caches, is_shared)
    if protocol_part is not None:
        protocol.restore(protocol_part)
    oracle = oracle_class(caches, is_shared)
    if model_part is not None:
        oracle.restore_model(model_part)
    oracle.mirror = [
        [dict(line_set) for line_set in cache.line_sets]
        for cache in caches
    ]
    for block, versions in zip(blocks, version_part):
        latest, memory = versions[0], versions[1]
        if latest:
            oracle.latest[block] = latest
        if memory:
            oracle.memory[block] = memory
        for cpu, version in enumerate(versions[2:]):
            if version is not None:
                oracle.copies[cpu][block] = version
    return caches, protocol, oracle


# -- action alphabet and trace emission ----------------------------------


def _alphabet(bounds: ExploreBounds, handles_flush: bool) -> tuple:
    """All (cpu, kind, block) actions of the model.

    Shared blocks take loads and stores (and flushes, for protocols
    that handle them); private blocks take fetches, loads, and stores.
    """
    actions = []
    shared_kinds = [AccessType.LOAD, AccessType.STORE]
    if handles_flush:
        shared_kinds.append(AccessType.FLUSH)
    for cpu in range(bounds.cpus):
        for block in bounds.shared_blocks:
            for kind in shared_kinds:
                actions.append((cpu, kind, block))
        for block in bounds.private_blocks:
            for kind in (
                AccessType.INST_FETCH,
                AccessType.LOAD,
                AccessType.STORE,
            ):
                actions.append((cpu, kind, block))
    return tuple(actions)


def path_trace(
    path, bounds: ExploreBounds, name: str = "explore"
) -> Trace:
    """The action path as a concrete columnar trace.

    ``Machine.run(trace, order="trace")`` replays it record by record
    in exactly the explored interleaving.
    """
    return Trace.from_arrays(
        name=name,
        cpus=bounds.cpus,
        shared_region=bounds.shared_region,
        cpu=np.asarray([cpu for cpu, _, _ in path], dtype=CPU_DTYPE),
        kind=np.asarray([int(kind) for _, kind, _ in path], dtype=KIND_DTYPE),
        address=np.asarray(
            [block * _BLOCK_BYTES for _, _, block in path],
            dtype=ADDRESS_DTYPE,
        ),
    )


def _shortest_path(parents, state) -> list:
    path = []
    while True:
        entry = parents[state]
        if entry is None:
            break
        state, action = entry
        path.append(action)
    path.reverse()
    return path


# -- frontier conformance -------------------------------------------------


def _conformance_divergence(
    trace: Trace, config: SimulationConfig, protocol
) -> tuple[str, str] | None:
    """(check, message) when the engines disagree on this path, else
    None.  ``protocol`` may be a registry name or a Protocol class;
    the segment gate only applies to registry names (its exactness
    analysis is about the real protocols)."""
    columnar = Machine(protocol, config).run(trace, order="trace")
    legacy = Machine(protocol, config).run(
        trace, order="trace", engine="legacy"
    )
    left = stats_signature(columnar)
    right = stats_signature(legacy)
    if left != right:
        return (
            "engine-diff:trace",
            "columnar vs legacy: " + _describe_divergence(left, right),
        )
    try:
        check_result_invariants(columnar, trace=trace)
    except InvariantViolation as violation:
        return "invariants:trace", str(violation)
    if (
        isinstance(protocol, str)
        and segment_reason(
            protocol, associativity=config.associativity, trace=trace
        )
        is None
    ):
        segment = Machine(protocol, config).run(
            trace, order="trace", engine="segment"
        )
        seg = stats_signature(segment)
        if seg != left:
            return (
                "segment-diff:trace",
                "segment vs columnar: " + _describe_divergence(seg, left),
            )
    return None


# -- the explorer ---------------------------------------------------------


def explore_protocol(
    protocol, bounds: ExploreBounds | None = None
) -> ExploreReport:
    """Exhaustively explore one protocol's small-model state space.

    Args:
        protocol: registry name or a Protocol subclass (a deliberately
            broken subclass keeping its parent's ``name`` is checked
            against the rules of the protocol it claims to be, exactly
            like :func:`~repro.verify.oracles.shadow_protocol`).
        bounds: the model; defaults to :class:`ExploreBounds`'s
            2 CPUs x 1 line x 1 set at depth 8.

    Returns:
        An :class:`ExploreReport`; ``report.violation`` carries the
        shortest-path counterexample when a rule broke, and
        ``report.exhaustive`` is True when the search closed the
        reachable set within the bounds without finding one.
    """
    if bounds is None:
        bounds = ExploreBounds()
    started = time.perf_counter()
    protocol_cls = (
        protocol_class(protocol) if isinstance(protocol, str) else protocol
    )
    name = protocol_cls.name
    try:
        oracle_class = ORACLES[name]
    except KeyError:
        raise ValueError(
            f"no oracle for protocol {name!r}; have {sorted(ORACLES)}"
        ) from None
    blocks = bounds.shared_blocks + bounds.private_blocks
    actions = _alphabet(bounds, protocol_cls.handles_flush)
    config = bounds.config

    report = ExploreReport(
        protocol=name, bounds=bounds, actions=len(actions)
    )
    geometry = config.geometry
    empty_caches = [Cache(geometry) for _ in range(bounds.cpus)]
    initial = _encode_state(
        empty_caches,
        protocol_cls(empty_caches, lambda _: False),
        oracle_class(empty_caches, lambda _: False),
        blocks,
    )
    # state -> (parent state, action) or None for the root.
    parents: dict = {initial: None}
    depths = {initial: 0}
    queue = deque([initial])
    report.states = 1

    def fail(check: str, message: str, path) -> ExploreViolation:
        failure = FuzzFailure(
            seed=0,
            shape="explore",
            protocol=name,
            check=check,
            message=message,
        )
        return ExploreViolation(failure=failure, trace=path_trace(
            path, bounds, name=f"explore-{name}"
        ))

    while queue:
        state = queue.popleft()
        depth = depths[state]
        if depth >= bounds.depth:
            report.frontier += 1
            continue
        for action in actions:
            caches, live_protocol, oracle = _decode_state(
                state, bounds, oracle_class, protocol_cls, blocks
            )
            oracle.index = depth
            cpu, kind, block = action
            try:
                if kind is AccessType.FLUSH:
                    outcome = live_protocol.flush(cpu, block)
                    oracle.observe_flush(cpu, block, outcome)
                else:
                    outcome = live_protocol.access(cpu, kind, block)
                    oracle.observe_access(cpu, kind, block, outcome)
            except OracleViolation as violation:
                path = _shortest_path(parents, state) + [action]
                report.violation = fail("oracle:trace", str(violation), path)
                report.wall_s = time.perf_counter() - started
                return report
            report.edges += 1
            successor = _encode_state(caches, live_protocol, oracle, blocks)
            if successor in parents:
                continue
            parents[successor] = (state, action)
            depths[successor] = depth + 1
            report.states += 1
            report.depth_reached = max(report.depth_reached, depth + 1)
            if report.conformance_checked < bounds.conformance:
                report.conformance_checked += 1
                path = _shortest_path(parents, successor)
                divergence = _conformance_divergence(
                    path_trace(path, bounds, name=f"explore-{name}"),
                    config,
                    protocol,
                )
                if divergence is not None:
                    check, message = divergence
                    report.violation = fail(check, message, path)
                    report.wall_s = time.perf_counter() - started
                    return report
            if report.states >= bounds.max_states:
                report.truncated = True
                report.wall_s = time.perf_counter() - started
                return report
            queue.append(successor)
    report.wall_s = time.perf_counter() - started
    return report


# -- counterexample minimization and artifacts ---------------------------


def violation_predicate(
    violation: ExploreViolation, protocol, config: SimulationConfig
):
    """A pure "does this trace still fail the same check" predicate.

    Unlike :func:`repro.verify.differential._failure_predicate` this
    accepts ``protocol`` as a name *or a class*, so counterexamples
    found while exploring a deliberately broken subclass shrink
    against that same subclass.
    """
    check = violation.failure.check

    if check.startswith("oracle"):

        def predicate(trace: Trace) -> bool:
            try:
                oracle_run(trace, config, protocol, order="trace")
            except OracleViolation:
                return True
            return False

        return predicate

    def predicate(trace: Trace) -> bool:
        return (
            _conformance_divergence(trace, config, protocol) is not None
        )

    return predicate


def write_counterexample(
    violation: ExploreViolation,
    protocol,
    config: SimulationConfig,
    directory: str | Path,
    max_checks: int = 48,
) -> tuple[Path, Trace]:
    """Minimize a violation's trace and write it as a JSON artifact.

    Returns the artifact path and the minimized trace.  The artifact
    is a standard ``swcc-fuzz-failure``, so ``swcc fuzz --replay``
    re-runs the failed check on it without the explorer.
    """
    from repro.verify.artifact import (
        failure_artifact,
        write_failure_artifact,
    )

    predicate = violation_predicate(violation, protocol, config)
    minimized = minimize_failing_trace(
        violation.trace, predicate, max_checks=max_checks
    )
    artifact = failure_artifact(violation.failure, minimized, config)
    return write_failure_artifact(artifact, directory), minimized
