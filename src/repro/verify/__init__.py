"""Differential verification and fuzzing subsystem.

The paper validates its analytical model against a trace-driven
simulator (Section 3); PR 1 added a second, fast replay engine next to
the legacy one.  That gives this repository three independent
implementations of the same machine — analytical model, legacy engine,
columnar engine — plus per-protocol reference semantics.  This package
turns their agreement into a continuously fuzzed invariant:

* :mod:`repro.verify.fuzzer` — seeded generator of adversarial traces
  (sharing ping-pong, hot single lines, migratory objects, set-conflict
  streams, degenerate CPU counts) beyond what
  :mod:`repro.trace.synthetic` produces;
* :mod:`repro.verify.oracles` — per-line reference state machines that
  shadow-check every protocol transition, including a version-counter
  model of value coherence for the update/invalidate protocols;
* :mod:`repro.verify.invariants` — global conservation checks on a
  finished run (cycle accounting, bus accounting, hits + misses =
  references);
* :mod:`repro.verify.differential` — replays each fuzzed trace through
  the columnar and legacy engines (byte-identical statistics), through
  a shadowed run with every fast path disabled (validates the
  fast-path contract flags), and through the analytical model inside
  documented tolerance bands;
* :mod:`repro.verify.minimize` — shrinks a failing trace to a minimal
  failing prefix (bisection) and then drops chunks (ddmin-style);
* :mod:`repro.verify.artifact` — JSON failure artifacts that embed the
  minimized trace for exact reproduction (``swcc fuzz --replay``);
* :mod:`repro.verify.explore` — bounded *exhaustive* state-space
  exploration of every protocol over a small model (2-8 CPUs, 1-4
  lines, bounded block alphabet): BFS over canonically encoded machine
  states with the oracles checking every transition, cross-engine
  conformance at discovered states, and shortest-path counterexamples
  fed through the same minimizer/artifact machinery.

The ``swcc fuzz`` command drives the sampling pipeline; ``swcc check``
drives the exhaustive one.
"""

from repro.verify.artifact import (
    failure_artifact,
    load_failure_artifact,
    replay_artifact,
    write_failure_artifact,
)
from repro.verify.differential import (
    MODEL_BANDS,
    PAPER_PROTOCOLS,
    FuzzFailure,
    check_case,
    minimize_failure,
    oracle_run,
    run_seed,
    stats_signature,
)
from repro.verify.explore import (
    ExploreBounds,
    ExploreReport,
    ExploreViolation,
    explore_protocol,
    write_counterexample,
)
from repro.verify.fuzzer import (
    SHAPES,
    FuzzCase,
    generate_case,
    validate_scale,
    validate_seed_count,
)
from repro.verify.invariants import InvariantViolation, check_result_invariants
from repro.verify.minimize import minimize_failing_trace, trace_prefix
from repro.verify.oracles import ORACLES, OracleViolation, shadow_protocol

__all__ = [
    "MODEL_BANDS",
    "ORACLES",
    "PAPER_PROTOCOLS",
    "SHAPES",
    "ExploreBounds",
    "ExploreReport",
    "ExploreViolation",
    "FuzzCase",
    "FuzzFailure",
    "InvariantViolation",
    "OracleViolation",
    "check_case",
    "check_result_invariants",
    "explore_protocol",
    "failure_artifact",
    "generate_case",
    "load_failure_artifact",
    "minimize_failing_trace",
    "minimize_failure",
    "oracle_run",
    "replay_artifact",
    "run_seed",
    "shadow_protocol",
    "stats_signature",
    "trace_prefix",
    "validate_scale",
    "validate_seed_count",
    "write_counterexample",
    "write_failure_artifact",
]
