"""Global conservation invariants on a finished simulation run.

These checks need no shadow instrumentation — they hold for *any*
correct replay, on either engine, and follow directly from the timing
model in :mod:`repro.sim.machine`:

* **Reference conservation** — the per-CPU instruction/load/store/flush
  counters must reproduce the trace's column histogram exactly, and
  sum to the trace length.
* **Cycle conservation** — every processor cycle is accounted for:

  .. code-block:: text

     sum(clocks) = instructions * 1
                 + sum(op_counts[op] * cpu_cycles[op])
                 + sum(wait_cycles) + sum(stolen_cycles)

  The bundled cost table is all-integer, so with the engines' exact
  integer-valued float arithmetic this holds to equality, not within
  a tolerance.
* **Bus conservation** — ``bus_busy_cycles`` equals the cost-weighted
  sum of bus operations, and ``bus_transactions`` counts exactly the
  operations with nonzero bus time.
* **Counter consistency** — miss operations in ``operation_counts``
  equal ``fetch_misses + data_misses``; dirty-miss operations equal
  ``dirty_victim_misses``; shared loads/stores match a vectorised
  recount over the trace.
* **Clock monotonicity** — clocks only ever advance, so every final
  clock is at least the processor's instruction count, waits and
  steals are non-negative, and ``elapsed_cycles`` is the max clock.
"""

from __future__ import annotations

import numpy as np

from repro.core.operations import CostTable, Operation
from repro.trace.records import Trace

__all__ = ["InvariantViolation", "check_result_invariants"]

_MISS_OPERATIONS = frozenset(
    {
        Operation.CLEAN_MISS_MEMORY,
        Operation.DIRTY_MISS_MEMORY,
        Operation.CLEAN_MISS_CACHE,
        Operation.DIRTY_MISS_CACHE,
    }
)
_DIRTY_VICTIM_OPERATIONS = frozenset(
    {Operation.DIRTY_MISS_MEMORY, Operation.DIRTY_MISS_CACHE}
)


class InvariantViolation(AssertionError):
    """A finished run broke a global conservation law."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise InvariantViolation(message)


def check_result_invariants(
    result, costs: CostTable | None = None, trace: Trace | None = None
) -> None:
    """Validate global invariants on a :class:`SimulationResult`.

    Args:
        result: the finished run.
        costs: the cost table the run used (defaults to the paper's).
        trace: when given, the reference mix and shared-reference
            counts are recomputed from the trace columns and compared.

    Raises:
        InvariantViolation: on the first broken invariant.
    """
    if costs is None:
        costs = CostTable.bus()

    # -- reference conservation against the trace columns ----------------
    if trace is not None:
        n = trace.cpus
        _require(
            len(result.cpus) == n,
            f"result has {len(result.cpus)} CPUs, trace has {n}",
        )
        mix = np.bincount(
            trace.cpu.astype(np.int64) * 4 + trace.kind, minlength=4 * n
        ).reshape(n, 4)
        for cpu, stats in enumerate(result.cpus):
            observed = (
                stats.instructions,
                stats.loads,
                stats.stores,
                stats.flushes,
            )
            expected = tuple(int(v) for v in mix[cpu])
            _require(
                observed == expected,
                f"cpu {cpu} reference mix {observed} != trace column "
                f"histogram {expected}",
            )
        block_shift = result.config.geometry.block_shift
        blocks = trace.block_index(block_shift)
        shared_low = trace.shared_region.start >> block_shift
        shared_high = (
            trace.shared_region.stop + result.config.block_bytes - 1
        ) >> block_shift
        shared = (blocks >= shared_low) & (blocks < shared_high)
        shared_loads = int(np.count_nonzero(shared & (trace.kind == 1)))
        shared_stores = int(np.count_nonzero(shared & (trace.kind == 2)))
        _require(
            result.shared_loads == shared_loads,
            f"shared_loads {result.shared_loads} != recount {shared_loads}",
        )
        _require(
            result.shared_stores == shared_stores,
            f"shared_stores {result.shared_stores} != recount "
            f"{shared_stores}",
        )

    # -- clock monotonicity / sign constraints ----------------------------
    for cpu, stats in enumerate(result.cpus):
        _require(
            stats.clock >= float(stats.instructions),
            f"cpu {cpu} clock {stats.clock} below its instruction count "
            f"{stats.instructions} (clocks only ever advance)",
        )
        _require(
            stats.wait_cycles >= 0.0,
            f"cpu {cpu} has negative wait cycles {stats.wait_cycles}",
        )
        _require(
            stats.stolen_cycles >= 0,
            f"cpu {cpu} has negative stolen cycles {stats.stolen_cycles}",
        )
    expected_elapsed = max((cpu.clock for cpu in result.cpus), default=0.0)
    _require(
        result.elapsed_cycles == expected_elapsed,
        f"elapsed_cycles {result.elapsed_cycles} != max processor clock "
        f"{expected_elapsed}",
    )

    # -- operation-count consistency ---------------------------------------
    for operation, count in result.operation_counts.items():
        _require(
            count >= 0, f"negative count {count} for {operation.name}"
        )
    miss_ops = sum(
        count
        for op, count in result.operation_counts.items()
        if op in _MISS_OPERATIONS
    )
    _require(
        miss_ops == result.fetch_misses + result.data_misses,
        f"miss operations {miss_ops} != fetch_misses "
        f"{result.fetch_misses} + data_misses {result.data_misses}",
    )
    dirty_ops = sum(
        count
        for op, count in result.operation_counts.items()
        if op in _DIRTY_VICTIM_OPERATIONS
    )
    _require(
        dirty_ops == result.dirty_victim_misses,
        f"dirty-miss operations {dirty_ops} != dirty_victim_misses "
        f"{result.dirty_victim_misses}",
    )

    # -- cycle conservation -------------------------------------------------
    op_cpu_cycles = sum(
        count * costs[op].cpu_cycles
        for op, count in result.operation_counts.items()
    )
    expected_clocks = (
        float(result.instructions)
        + op_cpu_cycles
        + sum(cpu.wait_cycles for cpu in result.cpus)
        + float(sum(cpu.stolen_cycles for cpu in result.cpus))
    )
    total_clocks = sum(cpu.clock for cpu in result.cpus)
    _require(
        total_clocks == expected_clocks,
        f"cycle conservation: sum of clocks {total_clocks} != "
        f"instructions + operation cycles + waits + steals "
        f"{expected_clocks}",
    )

    # -- bus conservation ----------------------------------------------------
    expected_busy = sum(
        count * costs[op].channel_cycles
        for op, count in result.operation_counts.items()
    )
    _require(
        result.bus_busy_cycles == expected_busy,
        f"bus conservation: busy cycles {result.bus_busy_cycles} != "
        f"cost-weighted bus operations {expected_busy}",
    )
    expected_transactions = sum(
        count
        for op, count in result.operation_counts.items()
        if costs[op].channel_cycles > 0
    )
    _require(
        result.bus_transactions == expected_transactions,
        f"bus transactions {result.bus_transactions} != operations with "
        f"bus time {expected_transactions}",
    )
