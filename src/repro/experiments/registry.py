"""Experiment registry: one entry per paper table/figure."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.experiments.result import ExperimentResult

__all__ = [
    "EXPERIMENTS",
    "Experiment",
    "get_experiment",
    "list_experiments",
    "register",
]


@dataclass(frozen=True)
class Experiment:
    """A registered, runnable reproduction of one paper artefact.

    Attributes:
        experiment_id: registry key, e.g. ``"figure5"`` or ``"table8"``.
        title: what the artefact shows.
        paper_ref: the table/figure number in the paper.
        runner: callable producing the :class:`ExperimentResult`.
            Keyword arguments (e.g. ``fast=True``) are forwarded.
    """

    experiment_id: str
    title: str
    paper_ref: str
    runner: Callable[..., ExperimentResult]

    def run(self, **kwargs) -> ExperimentResult:
        """Execute the experiment."""
        return self.runner(**kwargs)


EXPERIMENTS: dict[str, Experiment] = {}


def register(experiment_id: str, title: str, paper_ref: str):
    """Decorator registering an experiment runner under ``experiment_id``."""

    def decorator(runner: Callable[..., ExperimentResult]):
        if experiment_id in EXPERIMENTS:
            raise ValueError(f"duplicate experiment id {experiment_id!r}")
        EXPERIMENTS[experiment_id] = Experiment(
            experiment_id=experiment_id,
            title=title,
            paper_ref=paper_ref,
            runner=runner,
        )
        return runner

    return decorator


def get_experiment(experiment_id: str) -> Experiment:
    """Look up an experiment by id.

    Raises:
        KeyError: with the known ids listed, if absent.
    """
    try:
        return EXPERIMENTS[experiment_id.strip().lower()]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None


def list_experiments() -> list[Experiment]:
    """All experiments, ordered by id."""
    return [EXPERIMENTS[key] for key in sorted(EXPERIMENTS)]
