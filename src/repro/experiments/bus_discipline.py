"""Bus arbitration disciplines, in the model and the simulator.

ROADMAP open item 4: the paper's contention layer assumes a single
FCFS-ish bus server, while arXiv:1004.3560 compares service
disciplines on exactly this shared-bus/private-cache architecture.
With arbitration a parameterized axis on both sides of the repo —
:class:`repro.sim.bus.ArbitratedBus` in the simulator,
:func:`repro.queueing.disciplines.solve_bus_discipline` in the model —
this experiment asks the paper-shaped question: does the choice of
bus arbitration move the software-coherence crossover?
"""

from __future__ import annotations

import dataclasses

from repro.core import DRAGON, NO_CACHE, SOFTWARE_FLUSH, BusSystem
from repro.experiments.registry import register
from repro.experiments.result import ExperimentResult, TableData

__all__ = []

#: Per-grant arbitration overhead used throughout the study, in bus
#: cycles.  Large against the paper's 5.5-cycle mean transaction on
#: purpose: the study is about where overhead and its amortization
#: move the answers, so the axis must be loud enough to see.
_ARBITRATION_CYCLES = 4.0


def _crossover_apl(bus: BusSystem, params, processors: int = 16):
    """Smallest apl (0.1 steps) where Software-Flush beats No-Cache.

    The paper's Section 5 axis: No-Cache never caches shared data, so
    its power is apl-independent, while Software-Flush amortizes each
    fetch over ``apl`` references — the crossover is the run length a
    compiler must achieve before caching shared data pays off.
    """
    for tenth in range(10, 251):
        apl = tenth / 10.0
        point = params.replace(apl=apl)
        flush = bus.evaluate(
            SOFTWARE_FLUSH, point, processors
        ).processing_power
        nocache = bus.evaluate(NO_CACHE, point, processors).processing_power
        if flush >= nocache:
            return apl
    return None


@register(
    "extension-bus-discipline",
    "Extension: bus arbitration disciplines in model and simulator",
    "ROADMAP item 4 / arXiv:1004.3560",
)
def bus_discipline_effect(fast: bool = True, **_) -> ExperimentResult:
    """Compare arbitration disciplines end to end.

    Simulator side: the deferred-grant arbitrated engine replays one
    Dragon workload under every registered discipline with a fixed
    per-grant overhead; the model side solves the matching
    discipline-corrected machine-repairman variants on the measured
    workload parameters.  Checks pin

    * ``fcfs`` through the arbitrated engine is bit-identical to the
      default engines for a geometry-local protocol;
    * the family/segment fast paths refuse non-FCFS disciplines with
      a loud structured ``bus-discipline:`` reason instead of
      silently diverging;
    * every discipline satisfies the conservation invariants, batched
      grant windows amortize arbitration cycles, and fixed priority
      starves high-numbered CPUs (wait-cycle spread);
    * model and simulator agree per discipline within a band;
    * in the model, per-grant overhead moves the Software-Flush vs
      No-Cache crossover run length *down* (overhead taxes No-Cache's
      frequent small transactions hardest) and batching recovers most
      of it, while work-conserving disciplines share FCFS's crossover
      exactly.
    """
    from repro.core import WorkloadParams
    from repro.sim import (
        DISCIPLINES,
        Machine,
        SimulationConfig,
        measure_workload_params,
        run_geometry_family,
    )
    from repro.sim.onepass import family_support
    from repro.trace import preset
    from repro.verify.differential import stats_signature
    from repro.verify.invariants import (
        InvariantViolation,
        check_result_invariants,
    )

    records = 8_000 if fast else 32_000
    trace = preset("pops").generate(records_per_cpu=records)
    config = SimulationConfig()
    result = ExperimentResult(
        experiment_id="extension-bus-discipline",
        title="Bus arbitration disciplines: model vs simulator (pops)",
    )

    # -- simulator sweep + model comparison ------------------------------
    baseline = Machine("dragon", config).run(trace)
    params = measure_workload_params(trace, config, baseline)
    rows = []
    runs = {}
    errors = {}
    conserved = True
    conservation_detail = "all disciplines satisfy the invariants"
    for discipline in DISCIPLINES:
        arbitrated_config = dataclasses.replace(
            config,
            bus_discipline=discipline,
            bus_arbitration_cycles=_ARBITRATION_CYCLES,
        )
        run = Machine("dragon", arbitrated_config).run(
            trace, engine="arbitrated"
        )
        try:
            check_result_invariants(run, trace=trace)
        except InvariantViolation as violation:
            conserved = False
            conservation_detail = f"{discipline}: {violation}"
        runs[discipline] = run
        model = BusSystem(
            service_model="measured",
            bus_discipline=discipline,
            arbitration_cycles=_ARBITRATION_CYCLES,
        )
        predicted = model.evaluate(
            DRAGON, params, trace.cpus
        ).processing_power
        errors[discipline] = (
            predicted - run.processing_power
        ) / run.processing_power
        waits = [cpu.wait_cycles for cpu in run.cpus]
        rows.append(
            (
                discipline,
                f"{run.processing_power:.3f}",
                f"{predicted:.3f}",
                f"{100 * errors[discipline]:+.1f}%",
                f"{run.bus_arbitration_cycles:.0f}",
                f"{max(waits) - min(waits):.0f}",
            )
        )
    result.tables.append(
        TableData(
            title=(
                f"dragon at {trace.cpus} processors, "
                f"{_ARBITRATION_CYCLES:g}-cycle arbitration"
            ),
            headers=(
                "discipline", "sim power", "model power", "error",
                "arbitration cycles", "wait spread",
            ),
            rows=tuple(rows),
        )
    )
    result.add_check(
        "all-disciplines-conserve", conserved, conservation_detail
    )
    result.add_check(
        "model-tracks-simulator-per-discipline",
        all(abs(error) <= 0.40 for error in errors.values()),
        "; ".join(
            f"{discipline}: {100 * error:+.1f}%"
            for discipline, error in errors.items()
        ),
    )
    fcfs_arbitration = runs["fcfs"].bus_arbitration_cycles
    batched_arbitration = runs["batched"].bus_arbitration_cycles
    result.add_check(
        "batched-windows-amortize-arbitration",
        batched_arbitration < 0.85 * fcfs_arbitration,
        f"arbitration cycles: batched {batched_arbitration:.0f} vs "
        f"per-grant fcfs {fcfs_arbitration:.0f}",
    )

    def wait_spread(run):
        waits = [cpu.wait_cycles for cpu in run.cpus]
        return max(waits) - min(waits)

    result.add_check(
        "fixed-priority-starves-high-cpus",
        wait_spread(runs["fixed-priority"]) > 4.0 * wait_spread(runs["fcfs"]),
        f"wait-cycle spread {wait_spread(runs['fixed-priority']):.0f} "
        f"under fixed priority vs {wait_spread(runs['fcfs']):.0f} under "
        f"fcfs",
    )

    # -- fcfs byte-identity and the loud fast-path gates -----------------
    columnar = Machine("swflush", config).run(trace)
    arbitrated = Machine("swflush", config).run(trace, engine="arbitrated")
    result.add_check(
        "fcfs-arbitrated-is-bit-identical",
        stats_signature(arbitrated) == stats_signature(columnar),
        "swflush statistics match across engines counter for counter",
    )
    engine, reason = family_support(
        "swflush", associativity=config.associativity,
        bus_discipline="round-robin",
    )
    result.add_check(
        "family-engine-falls-back-loudly",
        engine == "fallback"
        and reason is not None
        and reason.startswith("bus-discipline:"),
        f"family_support: engine={engine!r}, reason={reason!r}",
    )
    family_run = run_geometry_family(
        "swflush",
        trace,
        (config.cache_bytes,),
        bus_discipline="round-robin",
        bus_arbitration_cycles=_ARBITRATION_CYCLES,
    )[config.cache_bytes]
    result.add_check(
        "family-fallback-runs-arbitrated",
        family_run.engine == "arbitrated",
        f"fallback result engine={family_run.engine!r}",
    )
    batched_config = dataclasses.replace(
        config, bus_discipline="batched"
    )
    try:
        Machine("swflush", batched_config).run(trace, engine="segment")
    except ValueError as error:
        segment_refused = "bus-discipline:" in str(error)
        segment_detail = str(error)
    else:
        segment_refused = False
        segment_detail = "segment engine accepted a batched-discipline run"
    result.add_check(
        "segment-engine-refuses-non-fcfs", segment_refused, segment_detail
    )

    # -- model: where the crossover run length moves ---------------------
    middle = WorkloadParams.middle()
    crossovers = {}
    crossover_rows = []
    for label, discipline, overhead in (
        ("fcfs, free arbitration", "fcfs", 0.0),
        ("round-robin", "round-robin", _ARBITRATION_CYCLES),
        ("fixed-priority", "fixed-priority", _ARBITRATION_CYCLES),
        ("fcfs", "fcfs", _ARBITRATION_CYCLES),
        ("batched", "batched", _ARBITRATION_CYCLES),
    ):
        bus = BusSystem(
            service_model="measured",
            bus_discipline=discipline,
            arbitration_cycles=overhead,
        )
        crossovers[label] = _crossover_apl(bus, middle)
        crossover_rows.append(
            (
                label,
                f"{overhead:g}",
                "-"
                if crossovers[label] is None
                else f"{crossovers[label]:.1f}",
            )
        )
    result.tables.append(
        TableData(
            title=(
                "run length (apl) where Software-Flush overtakes "
                "No-Cache, 16 processors, middle parameters"
            ),
            headers=("discipline", "arbitration cycles", "crossover apl"),
            rows=tuple(crossover_rows),
        )
    )
    free = crossovers["fcfs, free arbitration"]
    fcfs = crossovers["fcfs"]
    batched = crossovers["batched"]
    result.add_check(
        "overhead-moves-the-crossover-down",
        fcfs is not None and free is not None and fcfs < free,
        f"crossover apl {fcfs} with {_ARBITRATION_CYCLES:g}-cycle "
        f"grants vs {free} with free arbitration: per-grant overhead "
        "taxes No-Cache's frequent small transactions hardest, so "
        "caching shared data pays off at shorter run lengths",
    )
    result.add_check(
        "batching-recovers-the-crossover",
        batched is not None and fcfs < batched <= free,
        f"batched grant windows put the crossover at apl {batched}, "
        f"between per-grant fcfs ({fcfs}) and free arbitration "
        f"({free})",
    )
    result.add_check(
        "work-conserving-disciplines-share-the-crossover",
        crossovers["round-robin"] == fcfs
        and crossovers["fixed-priority"] == fcfs,
        "round-robin and fixed priority reorder grants but conserve "
        "work, so the aggregate crossover equals fcfs's",
    )
    return result
