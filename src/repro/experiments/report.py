"""Plain-text rendering: ASCII line charts and series tables.

The paper's figures are line charts of processing power or utilisation;
for a terminal-first reproduction we render them as character grids.
Each series gets a marker letter; overlapping points show the later
series' marker.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.result import Series, TableData

__all__ = ["ascii_chart", "series_table"]

_MARKERS = "ox+*#@%&=~abcdefgh"


def ascii_chart(
    series: Sequence[Series],
    width: int = 72,
    height: int = 20,
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Render series as an ASCII chart with axes and a legend.

    Args:
        series: curves to draw (at least one non-empty).
        width: plot-area width in characters.
        height: plot-area height in rows.
        xlabel: x-axis caption.
        ylabel: y-axis caption (shown in the header line).
    """
    points = [
        (x, y) for one in series for x, y in zip(one.x, one.y)
    ]
    if not points:
        return "(no data)"
    xs, ys = zip(*points)
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    y_low = min(y_low, 0.0)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]

    def place(x: float, y: float, marker: str) -> None:
        column = round((x - x_low) / x_span * (width - 1))
        row = height - 1 - round((y - y_low) / y_span * (height - 1))
        grid[row][column] = marker

    for index, one in enumerate(series):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in zip(one.x, one.y):
            place(x, y, marker)

    label_width = 9
    lines = []
    if ylabel:
        lines.append(f"{ylabel}")
    for row_index, row in enumerate(grid):
        value = y_high - (y_high - y_low) * row_index / (height - 1)
        lines.append(f"{value:>{label_width}.2f} |" + "".join(row))
    lines.append(" " * label_width + " +" + "-" * width)
    lines.append(
        " " * label_width
        + f"  {x_low:<12.4g}"
        + f"{xlabel:^{max(width - 28, 0)}}"
        + f"{x_high:>12.4g}"
    )
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {one.label}"
        for i, one in enumerate(series)
    )
    lines.append(" " * label_width + "  " + legend)
    return "\n".join(lines)


def series_table(series: Sequence[Series], xlabel: str = "x") -> TableData:
    """Tabulate series against the union of their x values."""
    x_values = sorted({x for one in series for x in one.x})
    headers = (xlabel or "x",) + tuple(one.label for one in series)
    rows = []
    for x in x_values:
        row = [f"{x:g}"]
        for one in series:
            try:
                row.append(f"{one.y_at(x):.4g}")
            except KeyError:
                row.append("-")
        rows.append(tuple(row))
    return TableData(title="series values", headers=headers, rows=tuple(rows))
