"""Bus performance figures (paper Figures 4-9, Section 5).

All six figures evaluate the four schemes on the Table 1 bus machine
over Table 7 parameter settings:

* Figures 4-6: processing power versus processors at low / middle /
  high ``ls`` and ``shd`` (all other parameters middle).
* Figure 7: the drastic effect of ``apl`` on Software-Flush.
* Figures 8-9: processing power versus ``apl`` at low and middle
  sharing.

The sweeps run on :func:`repro.experiments.surface.sweep_grid` (one
batched MVA pass per scheme instead of a scalar ``evaluate`` call per
cell); ``BusSystem.sweep`` remains the scalar reference and
``tests/test_vectorized_equivalence.py`` pins the two paths to
bit-identical values, so every figure check below is unaffected by the
port.
"""

from __future__ import annotations

from typing import Sequence

from repro.core import (
    ALL_SCHEMES,
    BASE,
    DRAGON,
    NO_CACHE,
    SOFTWARE_FLUSH,
    BusSystem,
    WorkloadParams,
)
from repro.core.schemes import CoherenceScheme
from repro.experiments.registry import register
from repro.experiments.result import ExperimentResult, Series
from repro.experiments.surface import GridSpec, sweep_grid

__all__ = [
    "scheme_comparison",
    "apl_effect",
    "power_vs_apl",
]

_PROCESSOR_RANGE = tuple(range(1, 17))


def _bus_power_series(
    label: str,
    scheme: CoherenceScheme,
    params: WorkloadParams,
    processors: Sequence[int],
    bus: BusSystem,
) -> Series:
    """Power-vs-processors series from one vectorised grid sweep."""
    surface = sweep_grid(
        scheme,
        params,
        processors=processors,
        costs=bus.costs,
        service_model=bus.service_model,
    )
    x, y = surface.series("processors")
    return Series(label, x, y)


def scheme_comparison(
    level: str,
    processors: Sequence[int] = _PROCESSOR_RANGE,
    bus: BusSystem | None = None,
) -> ExperimentResult:
    """Processing power vs processors with ``ls``/``shd`` at ``level``.

    The theoretical upper bound (power = n) is included, as the dotted
    line in the paper's plots.
    """
    bus = bus if bus is not None else BusSystem()
    params = WorkloadParams.middle(
        ls=_level_value("ls", level), shd=_level_value("shd", level)
    )
    result = ExperimentResult(
        experiment_id=f"figure{_FIGURE_BY_LEVEL[level]}",
        title=(
            f"Performance of cache-coherence schemes with {level} shd and ls"
        ),
        xlabel="processors",
        ylabel="processing power",
    )
    result.series.append(
        Series("ideal", tuple(float(n) for n in processors),
               tuple(float(n) for n in processors))
    )
    for scheme in ALL_SCHEMES:
        result.series.append(
            _bus_power_series(scheme.name, scheme, params, processors, bus)
        )
    _check_ordering(result, processors[-1])
    return result


_FIGURE_BY_LEVEL = {"low": 4, "middle": 5, "high": 6}


def _level_value(name: str, level: str) -> float:
    from repro.core import PARAMETER_RANGES

    return PARAMETER_RANGES[name].at(level)


def _check_ordering(result: ExperimentResult, n: int) -> None:
    """The ordering claims of Section 5.1 at the largest system size."""
    base = result.series_by_label("Base").y_at(n)
    dragon = result.series_by_label("Dragon").y_at(n)
    flush = result.series_by_label("Software-Flush").y_at(n)
    nocache = result.series_by_label("No-Cache").y_at(n)
    result.add_check(
        "base-bounds-all",
        base >= dragon and base >= flush and base >= nocache,
        f"at n={n}: Base={base:.2f}, Dragon={dragon:.2f}, "
        f"Flush={flush:.2f}, No-Cache={nocache:.2f}",
    )
    result.add_check(
        "dragon-beats-software",
        dragon >= flush and dragon >= nocache,
        f"Dragon={dragon:.2f} vs Flush={flush:.2f}, No-Cache={nocache:.2f}",
    )
    result.add_check(
        "flush-beats-nocache-at-middle-apl",
        flush >= nocache,
        f"Flush={flush:.2f} vs No-Cache={nocache:.2f}",
    )


@register(
    "figure4",
    "Scheme comparison, low sharing and reference rate",
    "Figure 4",
)
def figure4(**_) -> ExperimentResult:
    result = scheme_comparison("low")
    # Section 5.2: at low ls/shd all schemes do well; even No-Cache is
    # viable for a moderate number of processors.
    nocache8 = result.series_by_label("No-Cache").y_at(8)
    result.add_check(
        "nocache-viable-at-low-sharing",
        nocache8 >= 5.0,
        f"No-Cache power at n=8 is {nocache8:.2f} (>= 5 expected)",
    )
    dragon16 = result.series_by_label("Dragon").y_at(16)
    base16 = result.series_by_label("Base").y_at(16)
    result.add_check(
        "dragon-close-to-base",
        dragon16 >= 0.95 * base16,
        f"Dragon {dragon16:.2f} vs Base {base16:.2f} at n=16",
    )
    return result


@register(
    "figure5",
    "Scheme comparison, middle sharing and reference rate",
    "Figure 5",
)
def figure5(**_) -> ExperimentResult:
    result = scheme_comparison("middle")
    # Section 5.2: Dragon performs very well even with 16 processors;
    # Software-Flush gains little beyond 8-10 processors; No-Cache only
    # suits small systems.
    flush = result.series_by_label("Software-Flush")
    gain = flush.y_at(16) - flush.y_at(10)
    result.add_check(
        "flush-flattens-past-10",
        gain <= 0.35 * (16 - 10),
        f"Flush gains {gain:.2f} from n=10 to n=16 (flat if << 6)",
    )
    nocache = result.series_by_label("No-Cache")
    result.add_check(
        "nocache-saturates",
        nocache.y_at(16) - nocache.y_at(8) <= 0.5,
        f"No-Cache gains {nocache.y_at(16) - nocache.y_at(8):.2f} "
        f"from n=8 to n=16",
    )
    return result


@register(
    "figure6",
    "Scheme comparison, high sharing and reference rate",
    "Figure 6",
)
def figure6(**_) -> ExperimentResult:
    result = scheme_comparison("high")
    # Section 5.2: No-Cache saturates the bus below processing power 2;
    # Software-Flush below 5; Dragon still performs well.
    nocache16 = result.series_by_label("No-Cache").y_at(16)
    result.add_check(
        "nocache-saturates-below-2",
        nocache16 < 2.0,
        f"No-Cache power at n=16 is {nocache16:.2f} (< 2 expected)",
    )
    flush16 = result.series_by_label("Software-Flush").y_at(16)
    result.add_check(
        "flush-saturates-below-5",
        flush16 < 5.0,
        f"Software-Flush power at n=16 is {flush16:.2f} (< 5 expected)",
    )
    dragon16 = result.series_by_label("Dragon").y_at(16)
    base16 = result.series_by_label("Base").y_at(16)
    # "Dragon still gives good performance": it keeps the bulk of
    # Base's power while the software schemes collapse.
    result.add_check(
        "dragon-still-good",
        dragon16 >= 0.7 * base16 and dragon16 >= 2.0 * flush16,
        f"Dragon {dragon16:.2f} vs Base {base16:.2f} and "
        f"Flush {flush16:.2f} at n=16",
    )
    return result


@register("figure7", "Effect of varying apl on Software-Flush", "Figure 7")
def apl_effect(
    apl_values: Sequence[float] = (1.0, 2.0, 4.0, 7.7, 25.0, 100.0),
    processors: Sequence[int] = _PROCESSOR_RANGE,
    **_,
) -> ExperimentResult:
    """Software-Flush power vs processors for several ``apl`` values.

    Dragon and No-Cache at middle parameters are included as
    references, since the paper's claim is positional: ``apl = 1`` puts
    Software-Flush *below* No-Cache, large ``apl`` takes it to Dragon
    or beyond.
    """
    bus = BusSystem()
    middle = WorkloadParams.middle()
    result = ExperimentResult(
        experiment_id="figure7",
        title="Effect of varying apl; other parameters at middle values",
        xlabel="processors",
        ylabel="processing power",
    )
    for scheme in (DRAGON, NO_CACHE):
        result.series.append(
            _bus_power_series(scheme.name, scheme, middle, processors, bus)
        )
    # One 2-D surface (processors x apl) covers every Flush curve.
    flush = sweep_grid(
        SOFTWARE_FLUSH,
        GridSpec.of(middle, apl=apl_values),
        processors=processors,
    )
    for apl in apl_values:
        x, y = flush.series("processors", apl=float(apl))
        result.series.append(Series(f"Flush apl={apl:g}", x, y))
    n = processors[-1]
    flush_worst = result.series_by_label("Flush apl=1").y_at(n)
    nocache = result.series_by_label("No-Cache").y_at(n)
    result.add_check(
        "apl-1-worse-than-nocache",
        flush_worst < nocache,
        f"Flush(apl=1)={flush_worst:.2f} < No-Cache={nocache:.2f} at n={n}",
    )
    flush_best = result.series_by_label(
        f"Flush apl={apl_values[-1]:g}"
    ).y_at(n)
    dragon = result.series_by_label("Dragon").y_at(n)
    result.add_check(
        "high-apl-approaches-dragon",
        flush_best >= 0.9 * dragon,
        f"Flush(apl={apl_values[-1]:g})={flush_best:.2f} vs "
        f"Dragon={dragon:.2f} at n={n}",
    )
    return result


def power_vs_apl(
    shd_level: str,
    figure_id: str,
    apl_values: Sequence[float] | None = None,
    processors: Sequence[int] = (4, 8, 16),
) -> ExperimentResult:
    """Processing power versus ``apl`` for fixed system sizes."""
    if apl_values is None:
        apl_values = (1, 2, 3, 4, 6, 8, 12, 16, 25, 40, 60, 100)
    from repro.core import PARAMETER_RANGES

    shd = PARAMETER_RANGES["shd"].at(shd_level)
    result = ExperimentResult(
        experiment_id=figure_id,
        title=f"Effect of apl with {shd_level} sharing (shd={shd:g})",
        xlabel="apl",
        ylabel="processing power",
    )
    # One surface: all system sizes solved by a single batched MVA pass.
    surface = sweep_grid(
        SOFTWARE_FLUSH,
        GridSpec.of(WorkloadParams.middle(shd=shd), apl=apl_values),
        processors=processors,
    )
    for n in processors:
        x, y = surface.series("apl", processors=float(n))
        result.series.append(Series(f"n={n}", x, y))

    largest = f"n={processors[-1]}"
    curve = result.series_by_label(largest)
    low_gain = curve.y_at(4) - curve.y_at(1)
    tail_gain = curve.y_at(100) - curve.y_at(25)
    result.add_check(
        "steep-at-low-apl",
        low_gain > 0 and low_gain > tail_gain,
        f"{largest}: gain apl 1→4 = {low_gain:.2f}, "
        f"apl 25→100 = {tail_gain:.2f}",
    )
    return result


@register("figure8", "Effect of apl with low sharing", "Figure 8")
def figure8(**_) -> ExperimentResult:
    result = power_vs_apl("low", "figure8")
    # Section 5.3: with low sharing, performance quickly reaches its
    # maximum as apl increases.
    curve = result.series_by_label("n=16")
    result.add_check(
        "plateau-reached-early",
        curve.y_at(25) >= 0.95 * curve.y_at(100),
        f"n=16: power at apl=25 is {curve.y_at(25):.2f} vs "
        f"{curve.y_at(100):.2f} at apl=100",
    )
    return result


@register("figure9", "Effect of apl with middle sharing", "Figure 9")
def figure9(**_) -> ExperimentResult:
    result = power_vs_apl("middle", "figure9")
    # Section 5.3: with middle sharing, performance stays sensitive to
    # apl even at relatively high values.
    curve = result.series_by_label("n=16")
    result.add_check(
        "still-sensitive-at-high-apl",
        curve.y_at(100) >= 1.05 * curve.y_at(16),
        f"n=16: power keeps growing apl 16→100: "
        f"{curve.y_at(16):.2f} → {curve.y_at(100):.2f}",
    )
    return result
