"""Geometry sweeps: cache size × block size in one pass per family.

The paper's sensitivity studies (Section 3's cache-size validation,
the block-size extension) re-simulate the same trace under many cache
geometries.  :func:`sweep_geometries` is the experiment-layer API for
that pattern: for each block size it builds the matching bus cost
table and hands the whole cache-size axis to
:func:`repro.sim.run_geometry_family`, which traverses the trace once
per (protocol, block size) family — via the vectorised one-pass engine
for the geometry-local protocols and the epoch-partitioned engine for
Dragon and WTI — and falls back to per-config ``Machine.run`` only for
protocols with neither (recording the structured reason).  Either way
the statistics are bit-identical to a per-cell replay.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.core.operations import CostTable, derive_bus_costs
from repro.experiments.registry import register
from repro.experiments.result import ExperimentResult, TableData
from repro.obs.metrics import replay_counters
from repro.sim import (
    Machine,
    SimulationConfig,
    SimulationResult,
    family_support,
    run_geometry_family,
)
from repro.trace import Trace, preset

__all__ = ["sweep_geometries"]


def sweep_geometries(
    protocol: str,
    trace: Trace,
    cache_sizes: Sequence[int],
    block_sizes: Sequence[int] = (16,),
    associativity: int = 2,
    order: str = "time",
    cpus: int | None = None,
    costs_for_block: Callable[[int], CostTable] | None = None,
) -> dict[tuple[int, int], SimulationResult]:
    """Simulate a full cache-size × block-size grid.

    Args:
        protocol: any registered protocol name.
        trace: the reference stream.
        cache_sizes: per-processor cache sizes in bytes.
        block_sizes: cache block sizes in bytes; each defines one
            geometry family (one trace traversal on the fast path).
        associativity: shared by the whole grid.
        order: replay order, as in ``Machine.run``.
        cpus: optional restriction to the first ``cpus`` processors.
        costs_for_block: cost table per block size.  The default
            derives the paper's Table 1 with the matching block
            transfer cycles (``derive_bus_costs(block_words=bb // 4)``,
            which reproduces Table 1 exactly at 16 bytes).

    Returns:
        ``{(cache_bytes, block_bytes): SimulationResult}``, every entry
        bit-identical to the corresponding per-config ``Machine.run``.
    """
    results: dict[tuple[int, int], SimulationResult] = {}
    for block_bytes in block_sizes:
        costs = (
            costs_for_block(block_bytes)
            if costs_for_block is not None
            else derive_bus_costs(block_words=block_bytes // 4)
        )
        family = run_geometry_family(
            protocol,
            trace,
            cache_sizes,
            block_bytes=block_bytes,
            associativity=associativity,
            costs=costs,
            order=order,
            cpus=cpus,
        )
        for cache_bytes, result in family.items():
            results[(cache_bytes, block_bytes)] = result
    return results


@register(
    "sweep-geometry",
    "Geometry sweep: one trace traversal per (protocol, block size)",
    "Section 3 context",
)
def geometry_sweep(
    fast: bool = True,
    protocol: str = "swflush",
    workload: str = "pops",
    **_,
) -> ExperimentResult:
    """Exercise the one-pass engine on a full geometry grid.

    Sweeps the paper's three validation cache sizes crossed with three
    block sizes under one software scheme, and checks the properties
    that make the sweep trustworthy: the fast path actually engaged
    (one traversal per block size, not one per cell), a spot cell is
    bit-identical to a fresh per-config ``Machine.run``, and miss
    rates fall monotonically with cache size at every block size.
    """
    records = 40_000 if fast else None
    trace = (
        preset(workload).generate(records_per_cpu=records)
        if records
        else preset(workload).generate()
    )
    cache_sizes = (16384, 65536, 262144)
    block_sizes = (8, 16, 32)

    replayed_before, _ = replay_counters()
    grid = sweep_geometries(protocol, trace, cache_sizes, block_sizes)
    replayed_after, _ = replay_counters()

    result = ExperimentResult(
        experiment_id="sweep-geometry",
        title=(
            f"{protocol} on {workload}: "
            f"{len(cache_sizes)}x{len(block_sizes)} geometry grid"
        ),
    )
    rows = []
    for block_bytes in block_sizes:
        for cache_bytes in cache_sizes:
            run = grid[(cache_bytes, block_bytes)]
            rows.append(
                (
                    f"{block_bytes}B",
                    f"{cache_bytes // 1024}K",
                    f"{run.data_miss_rate:.4f}",
                    f"{run.instruction_miss_rate:.4f}",
                    f"{run.processing_power:.3f}",
                    run.engine,
                )
            )
    result.tables.append(
        TableData(
            title=f"{trace.cpus} processors, associativity 2",
            headers=("block", "cache", "msdat", "mains", "power", "engine"),
            rows=tuple(rows),
        )
    )

    expected_engine, _ = family_support(protocol)
    fast_path = expected_engine != "fallback"
    engines = {run.engine for run in grid.values()}
    result.add_check(
        "one-pass-fast-path-used",
        engines == ({expected_engine} if fast_path else {"columnar"}),
        f"engines: {sorted(engines)}",
    )
    replayed = replayed_after - replayed_before
    budget = len(block_sizes) * len(trace)
    result.add_check(
        "one-traversal-per-family",
        replayed <= budget if fast_path else replayed >= budget,
        f"{replayed} records replayed for {len(grid)} cells "
        f"({len(trace)} per full traversal)",
    )

    spot_cache, spot_block = 65536, 16
    spot_config = SimulationConfig(
        cache_bytes=spot_cache, block_bytes=spot_block, associativity=2
    )
    spot_costs = derive_bus_costs(block_words=spot_block // 4)
    reference = Machine(protocol, spot_config, spot_costs).run(trace)
    spot = grid[(spot_cache, spot_block)]
    result.add_check(
        "spot-cell-bit-identical-to-replay",
        _stats_equal(spot, reference),
        f"64K/16B: power {spot.processing_power:.6f} "
        f"vs replay {reference.processing_power:.6f}",
    )

    monotone = all(
        grid[(small, bb)].data_misses >= grid[(large, bb)].data_misses
        for bb in block_sizes
        for small, large in zip(cache_sizes, cache_sizes[1:])
    )
    result.add_check(
        "bigger-caches-cut-misses",
        monotone,
        "data misses non-increasing in cache size at every block size",
    )
    return result


def _stats_equal(a: SimulationResult, b: SimulationResult) -> bool:
    from repro.verify.differential import stats_signature

    return stats_signature(a) == stats_signature(b)
