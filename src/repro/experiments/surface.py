"""``sweep_grid``: batch-evaluate the analytical model over a grid.

Every figure and table in the paper is a sweep of the analytical
model; this module is the experiment-facing API over the vectorised
kernels (:mod:`repro.core.vectorized`).  One call maps a whole
parameter grid — workload axes as an outer product, plus the machine
axis (processor counts on a bus, stage counts on a network) — and
returns a :class:`ModelSurface` whose arrays are **bit-identical** to
looping ``BusSystem.evaluate`` / ``NetworkSystem.evaluate`` over the
same cells (the scalar path stays the reference implementation and
the equivalence is test-enforced).

Typical use::

    from repro.experiments.surface import sweep_grid

    surface = sweep_grid(
        SOFTWARE_FLUSH,
        GridSpec.of(WorkloadParams.middle(), apl=(1, 2, 4, 8, 25)),
        processors=range(1, 17),
    )
    surface.power[processors_index, apl_index]   # processing power
    surface.series("apl", processors=16)         # (x, y) for plotting

The machine axis always comes first in the result arrays, followed by
the workload axes in declaration order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.operations import CostTable
from repro.core.params import WorkloadParams
from repro.core.schemes import CoherenceScheme
from repro.core.vectorized import (
    ParameterGrid,
    bus_surface_arrays,
    network_surface_arrays,
)

__all__ = ["GridSpec", "ModelSurface", "sweep_grid"]


@dataclass(frozen=True)
class GridSpec:
    """A workload-parameter grid: a base point plus swept axes.

    The axes form an outer product, one result dimension per axis in
    declaration order.  ``axes`` maps parameter name to the swept
    values; parameters not listed stay at the ``base`` value.
    """

    base: WorkloadParams
    axes: tuple[tuple[str, tuple[float, ...]], ...] = ()

    @classmethod
    def of(
        cls, base: WorkloadParams, **axes: Iterable[float]
    ) -> "GridSpec":
        """Build a spec from keyword axes (order preserved)."""
        return cls(
            base=base,
            axes=tuple(
                (name, tuple(float(value) for value in values))
                for name, values in axes.items()
            ),
        )

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(len(values) for _, values in self.axes)

    @property
    def axis_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.axes)

    def parameter_grid(self) -> ParameterGrid:
        """The spec as broadcast-oriented arrays."""
        return ParameterGrid.outer(
            self.base, **{name: values for name, values in self.axes}
        )

    def workload_at(self, index: tuple[int, ...]) -> WorkloadParams:
        """The validated scalar workload at one grid index."""
        overrides = {
            name: values[position]
            for (name, values), position in zip(self.axes, index)
        }
        return self.base.replace(**overrides)


@dataclass(frozen=True)
class ModelSurface:
    """The analytical model mapped over ``machine axis x grid``.

    Attributes:
        scheme: scheme name.
        machine: ``"bus"`` or ``"network"``.
        machine_axis: the swept machine sizes — processor counts on a
            bus, stage counts on a network.
        spec: the workload grid that was swept.
        power: processing power, shape
            ``(len(machine_axis),) + spec.shape``.
        utilization: processor utilisation, same shape.
        extras: further model outputs by name (e.g. bus
            ``waiting_cycles``/``bus_utilization``, network
            ``thinking_fraction``/``processors``), same shape.
    """

    scheme: str
    machine: str
    machine_axis: tuple[int, ...]
    spec: GridSpec
    power: np.ndarray
    utilization: np.ndarray
    extras: Mapping[str, np.ndarray] = field(default_factory=dict)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.power.shape

    @property
    def axis_names(self) -> tuple[str, ...]:
        """All axis names, machine axis first."""
        machine_name = "processors" if self.machine == "bus" else "stages"
        return (machine_name,) + self.spec.axis_names

    def axis_values(self, name: str) -> tuple[float, ...]:
        """The swept values along one named axis."""
        if name == self.axis_names[0]:
            return tuple(float(value) for value in self.machine_axis)
        for axis_name, values in self.spec.axes:
            if axis_name == name:
                return values
        raise KeyError(
            f"unknown axis {name!r}; surface axes: {self.axis_names}"
        )

    def _index_for(self, **coordinates) -> tuple:
        """Build an array index pinning every axis except the free ones."""
        index: list = []
        for axis in self.axis_names:
            if axis in coordinates:
                values = self.axis_values(axis)
                target = float(coordinates.pop(axis))
                try:
                    index.append(values.index(target))
                except ValueError:
                    raise KeyError(
                        f"{target:g} is not on axis {axis!r} "
                        f"(values: {values})"
                    ) from None
            else:
                index.append(slice(None))
        if coordinates:
            raise KeyError(
                f"unknown axes {sorted(coordinates)}; "
                f"surface axes: {self.axis_names}"
            )
        return tuple(index)

    def power_at(self, **coordinates) -> float | np.ndarray:
        """Processing power with axes pinned by value (not index)."""
        selected = self.power[self._index_for(**coordinates)]
        return float(selected) if np.ndim(selected) == 0 else selected

    def series(self, axis: str, **pinned) -> tuple[tuple[float, ...],
                                                   tuple[float, ...]]:
        """An ``(x, y)`` power curve along ``axis``, other axes pinned.

        Every axis other than ``axis`` must be pinned by value in
        ``pinned`` (axes of length 1 pin themselves).
        """
        free = [
            name for name in self.axis_names
            if name != axis and name not in pinned
        ]
        for name in list(free):
            values = self.axis_values(name)
            if len(values) == 1:
                pinned[name] = values[0]
                free.remove(name)
        if free:
            raise KeyError(f"axes {free} must be pinned for a 1-D series")
        y = self.power_at(**pinned)
        x = self.axis_values(axis)
        return x, tuple(float(value) for value in np.asarray(y).ravel())


def sweep_grid(
    scheme: CoherenceScheme,
    grid: GridSpec | WorkloadParams,
    *,
    machine: str = "bus",
    processors: Iterable[int] = (16,),
    stages: Iterable[int] = (8,),
    costs: CostTable | None = None,
    service_model: str = "exponential",
) -> ModelSurface:
    """Evaluate one scheme over a whole grid in a few numpy passes.

    Args:
        scheme: the coherence scheme (workload model).
        grid: a :class:`GridSpec`, or a bare :class:`WorkloadParams`
            for a machine-axis-only sweep.
        machine: ``"bus"`` (processor-count axis, one batched MVA
            pass solves every count at once) or ``"network"`` (stage
            axis; each stage count is one vectorised fixed point, as
            its cost table depends on the stage count).
        processors: bus machine sizes to sweep (machine="bus").
        stages: network stage counts to sweep (machine="network").
        costs: cost-table override.  For networks this pins one table
            across all stage counts; by default each stage count
            derives its own Table 9.
        service_model: bus queueing discipline, as in
            :class:`repro.core.bus.BusSystem`.

    Returns:
        A :class:`ModelSurface`; cell values are bit-identical to the
        scalar ``evaluate`` loop over the same cells.
    """
    spec = grid if isinstance(grid, GridSpec) else GridSpec(base=grid)
    parameter_grid = spec.parameter_grid()

    if machine == "bus":
        counts = tuple(int(count) for count in processors)
        surface = bus_surface_arrays(
            scheme,
            parameter_grid,
            counts,
            costs=costs,
            service_model=service_model,
        )
        return ModelSurface(
            scheme=scheme.name,
            machine="bus",
            machine_axis=counts,
            spec=spec,
            power=surface.processing_power,
            utilization=surface.utilization,
            extras={
                "waiting_cycles": surface.waiting_cycles,
                "bus_utilization": surface.bus_utilization,
                "cpu_cycles": np.broadcast_to(
                    surface.cost.cpu_cycles, spec.shape
                ),
                "channel_cycles": np.broadcast_to(
                    surface.cost.channel_cycles, spec.shape
                ),
            },
        )
    if machine == "network":
        stage_counts = tuple(int(count) for count in stages)
        rows = [
            network_surface_arrays(
                scheme, parameter_grid, count, costs=costs
            )
            for count in stage_counts
        ]
        grid_shape = spec.shape
        stack = {
            name: np.stack(
                [np.broadcast_to(getattr(row, name), grid_shape)
                 for row in rows]
            )
            for name in (
                "processing_power",
                "utilization",
                "thinking_fraction",
                "request_rate",
                "time_per_instruction",
            )
        }
        return ModelSurface(
            scheme=scheme.name,
            machine="network",
            machine_axis=stage_counts,
            spec=spec,
            power=stack["processing_power"],
            utilization=stack["utilization"],
            extras={
                "thinking_fraction": stack["thinking_fraction"],
                "request_rate": stack["request_rate"],
                "time_per_instruction": stack["time_per_instruction"],
                "processors": np.array(
                    [row.processors for row in rows], dtype=float
                ),
            },
        )
    raise ValueError(
        f"machine must be 'bus' or 'network', got {machine!r}"
    )
