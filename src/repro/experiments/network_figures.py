"""Multistage-network figures (paper Figures 10-11, Section 6).

Figure 10 compares buses against circuit-switched multistage networks
in the small scale; Figure 11 maps the 256-processor network's
utilisation surface and places the Base / Software-Flush / No-Cache
schemes on it at Table 7's low/middle/high parameter ranges.

The curve sweeps run on the vectorised kernels — Figure 10 through
:func:`repro.experiments.surface.sweep_grid`, Figure 11 through the
lock-step fixed-point solver in :mod:`repro.queueing.batch` — and are
bit-identical to the scalar ``evaluate`` loops they replaced (the
scheme marker points on Figure 11 still use the scalar path directly).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core import (
    BASE,
    DRAGON,
    NO_CACHE,
    SOFTWARE_FLUSH,
    NetworkSystem,
    WorkloadParams,
)
from repro.experiments.registry import register
from repro.experiments.result import ExperimentResult, Series
from repro.experiments.surface import sweep_grid
from repro.queueing.batch import closed_loop_thinking_grid

__all__ = ["bus_versus_network", "network_utilization_map"]


@register("figure10", "Buses versus networks in the small scale", "Figure 10")
def bus_versus_network(
    bus_processors: Sequence[int] = tuple(range(1, 17)),
    network_stages: Sequence[int] = (1, 2, 3, 4, 5),
    **_,
) -> ExperimentResult:
    """Processing power of bus and network machines, middle workload.

    Dragon appears only on the bus (no broadcast on a network); the
    Base, Software-Flush, and No-Cache schemes appear on both.
    """
    params = WorkloadParams.middle()
    result = ExperimentResult(
        experiment_id="figure10",
        title="Buses versus networks in the small scale (middle workload)",
        xlabel="processors",
        ylabel="processing power",
    )
    for scheme in (BASE, DRAGON, SOFTWARE_FLUSH, NO_CACHE):
        surface = sweep_grid(scheme, params, processors=bus_processors)
        x, y = surface.series("processors")
        result.series.append(Series(f"bus {scheme.name}", x, y))
    for scheme in (BASE, SOFTWARE_FLUSH, NO_CACHE):
        surface = sweep_grid(
            scheme, params, machine="network", stages=network_stages
        )
        result.series.append(
            Series(
                f"net {scheme.name}",
                tuple(
                    float(ports)
                    for ports in surface.extras["processors"].ravel()
                ),
                tuple(float(power) for power in surface.power.ravel()),
            )
        )

    # Section 6.3 claims, checked at the largest common size.
    top = float(2 ** network_stages[-1])
    largest_bus = float(bus_processors[-1])
    net_flush = result.series_by_label("net Software-Flush")
    net_nocache = result.series_by_label("net No-Cache")
    bus_flush = result.series_by_label("bus Software-Flush")
    bus_nocache = result.series_by_label("bus No-Cache")
    compare_at = min(top, largest_bus)
    result.add_check(
        "network-overtakes-saturated-bus",
        net_flush.y_at(compare_at) > bus_flush.y_at(compare_at)
        and net_nocache.y_at(compare_at) > bus_nocache.y_at(compare_at),
        f"at n={compare_at:g}: net Flush {net_flush.y_at(compare_at):.2f} vs "
        f"bus {bus_flush.y_at(compare_at):.2f}; net No-Cache "
        f"{net_nocache.y_at(compare_at):.2f} vs bus "
        f"{bus_nocache.y_at(compare_at):.2f}",
    )
    flush_scales = all(
        later > earlier
        for earlier, later in zip(net_flush.y, net_flush.y[1:])
    )
    nocache_scales = all(
        later > earlier
        for earlier, later in zip(net_nocache.y, net_nocache.y[1:])
    )
    result.add_check(
        "software-schemes-scale-on-network",
        flush_scales and nocache_scales,
        f"net Flush {net_flush.y[0]:.2f}→{net_flush.y[-1]:.2f}, "
        f"net No-Cache {net_nocache.y[0]:.2f}→{net_nocache.y[-1]:.2f}",
    )
    result.add_check(
        "flush-more-efficient-than-nocache",
        net_flush.y_at(top) > net_nocache.y_at(top),
        f"at n={top:g}: Flush {net_flush.y_at(top):.2f} vs "
        f"No-Cache {net_nocache.y_at(top):.2f}",
    )
    return result


@register(
    "figure11",
    "256-processor network utilisation vs request rate",
    "Figure 11",
)
def network_utilization_map(
    stages: int = 8,
    message_sizes: Sequence[float] = (1, 2, 4, 8, 16),
    request_rates: Sequence[float] | None = None,
    **_,
) -> ExperimentResult:
    """Relative utilisation versus unit-request rate, plus scheme points.

    The x axis is the unit-request rate ``m * t`` (transaction rate
    times network service time); the y axis is utilisation relative to
    a contention-free network.  The nine markers place Base (B),
    Software-Flush (S), and No-Cache (N) at the low/middle/high ranges,
    as in the paper's plot.
    """
    if request_rates is None:
        request_rates = tuple(i / 50.0 for i in range(1, 50))
    network = NetworkSystem(stages)
    result = ExperimentResult(
        experiment_id="figure11",
        title=(
            f"{2**stages}-processor network: utilisation vs request rate "
            f"for message sizes {tuple(message_sizes)}"
        ),
        xlabel="unit-request rate (m*t)",
        ylabel="processor utilisation U = m_n/(m t)",
    )
    for size in message_sizes:
        service = size + 2.0 * stages
        # Vectorised sweep: mirror evaluate_message_load's arithmetic
        # element-wise, then drive every rate's fixed point in
        # lock-step.  Bit-identical to the scalar loop it replaced.
        transaction_rate = np.asarray(request_rates, dtype=float) / service
        demand = size + 2.0 * stages
        # think_time is recovered as (think + demand) - demand in the
        # scalar path (InstructionCost stores c, not c - b); keep the
        # same rounding.
        think = (1.0 / transaction_rate + demand) - demand
        unit_request_rate = demand / think
        thinking = closed_loop_thinking_grid(unit_request_rate, stages)
        result.series.append(
            Series(
                f"size={size:g}w",
                tuple(float(rate) for rate in request_rates),
                tuple(float(value) for value in thinking),
            )
        )

    marker_points: dict[str, tuple[float, float]] = {}
    for code, scheme in (("B", BASE), ("S", SOFTWARE_FLUSH), ("N", NO_CACHE)):
        for level in ("low", "middle", "high"):
            params = WorkloadParams.at_level(level)
            prediction = network.evaluate(scheme, params)
            label = f"{code}{level[0]}"
            marker_points[label] = (
                prediction.request_rate,
                prediction.thinking_fraction,
            )
            result.series.append(
                Series(label, (prediction.request_rate,),
                       (prediction.thinking_fraction,))
            )

    # Claim 1: for 4-word messages, utilisation is roughly halved at a
    # unit-request rate of ~60% (the paper's 3% miss rate example),
    # relative to its light-load value.  Skipped when the caller sweeps
    # custom sizes that exclude 4 words.
    if any(float(size) == 4.0 for size in message_sizes):
        four_word = result.series_by_label("size=4w")
        at_sixty = min(
            zip(four_word.x, four_word.y), key=lambda p: abs(p[0] - 0.60)
        )[1]
        light_load = four_word.y[0]
        ratio = at_sixty / light_load
        result.add_check(
            "halved-at-60pct-rate",
            0.35 <= ratio <= 0.65,
            f"U at rate 0.6 is {at_sixty:.2f}, {ratio:.2f}x the light-load "
            f"{light_load:.2f} (size 4w)",
        )
    # Claim 2: the nine points split into the two classes of Section 6.3.
    good = ("Bl", "Bm", "Bh", "Sl", "Sm", "Nl")
    poor = ("Sh", "Nm", "Nh")
    good_values = {label: marker_points[label][1] for label in good}
    poor_values = {label: marker_points[label][1] for label in poor}
    result.add_check(
        "two-performance-classes",
        min(good_values.values()) > max(poor_values.values()),
        f"good class min {min(good_values.values()):.2f} "
        f"({min(good_values, key=good_values.get)}) > poor class max "
        f"{max(poor_values.values()):.2f} "
        f"({max(poor_values, key=poor_values.get)})",
    )
    result.notes.append(
        "Marker code: first letter = scheme (B/S/N), second = parameter "
        "range (l/m/h); the paper's Figure 11 annotation."
    )
    return result
