"""Extension experiment: when does a hybrid beat both of its parents?

Dragon never invalidates (every shared store updates remote copies
forever) and WTI never updates (every bus write kills remote copies).
The hybrid family sits between them: update a remote copy until it
absorbs ``k`` broadcasts without local use, then invalidate it.  This
experiment maps the workload region where that adaptivity wins
*simultaneously* against both parents — in the analytical model (a
:func:`~repro.analysis.crossover.dominance_grid` over write-run length
and sharing intensity) and in end-to-end simulation of synthetic
traces with matching structure.

The mechanism: with ``W = apl * wr`` writes per inter-processor run,
Dragon pays ``W`` broadcasts per run even after remote copies are
dead, while the hybrid caps the per-run broadcast count near ``k`` at
the cost of one re-fetch miss per killed copy.  Long write runs make
the saved broadcasts outweigh the re-fetch; short runs are Dragon's
home turf.  WTI loses the bus to per-store write-throughs in either
regime, so the interesting boundary is the Dragon-side one.
"""

from __future__ import annotations

from repro.analysis.crossover import dominance_grid
from repro.core import (
    DRAGON,
    HYBRID_4,
    WRITE_THROUGH_INVALIDATE,
    WorkloadParams,
)
from repro.experiments.registry import register
from repro.experiments.result import ExperimentResult, TableData

__all__ = []

#: Analytical sweep axes: write-run length (``apl`` at middle ``wr``)
#: by sharing intensity.  ``apl`` doubles as the run length because the
#: writes per run scale as ``apl * wr`` with ``wr`` held at Table 7
#: middle.
_APL_AXIS = (2.0, 8.0, 32.0, 64.0)
_SHD_AXIS = (0.05, 0.15, 0.30, 0.42)


@register(
    "extension-hybrid-crossover",
    "Extension: where hybrid update/invalidate beats both parents",
    "Section 2.2.4 context",
)
def hybrid_crossover(fast: bool = True, **_) -> ExperimentResult:
    """Locate the hybrid protocols' winning region, model and simulator.

    Checks:

    * the analytical dominance grid has a non-empty, non-universal
      winning region for Hybrid-4 against {Dragon, WTI}, and that
      region sits at long write runs (high ``apl``), not short ones;
    * on a long-write-run synthetic trace, every simulated hybrid's
      processing power strictly exceeds both simulated parents';
    * on a short-run trace the ordering flips back: simulated Dragon
      beats every hybrid (adaptivity is not a free lunch).
    """
    from repro.sim import Machine, SimulationConfig
    from repro.trace import TraceConfig, generate_trace

    result = ExperimentResult(
        experiment_id="extension-hybrid-crossover",
        title="Hybrid update/invalidate vs both parents (Dragon, WTI)",
    )

    # --- Analytical model: dominance grid over run length x sharing.
    grid = dominance_grid(
        HYBRID_4,
        (DRAGON, WRITE_THROUGH_INVALIDATE),
        {"apl": _APL_AXIS, "shd": _SHD_AXIS},
        processors=16,
        base_params=WorkloadParams.middle(),
    )
    rows = []
    for i, apl in enumerate(grid.axis_values[0]):
        for j, shd in enumerate(grid.axis_values[1]):
            rows.append(
                (
                    f"{apl:g}",
                    f"{shd:g}",
                    f"{grid.candidate_power[i][j]:.2f}",
                    f"{grid.rival_power['Dragon'][i][j]:.2f}",
                    f"{grid.rival_power['WTI'][i][j]:.2f}",
                    "hybrid" if grid.wins[i][j] else "parent",
                )
            )
    result.tables.append(
        TableData(
            title="model: 16-processor bus, other parameters at middle",
            headers=("apl", "shd", "Hybrid-4", "Dragon", "WTI", "winner"),
            rows=tuple(rows),
        )
    )
    short_run_row = grid.wins[0]
    long_run_row = grid.wins[-1]
    result.add_check(
        "model-has-hybrid-region",
        0 < grid.winning_cells < grid.total_cells,
        f"hybrid wins {grid.winning_cells}/{grid.total_cells} cells",
    )
    result.add_check(
        "model-region-sits-at-long-runs",
        all(long_run_row) and not any(short_run_row),
        f"apl={_APL_AXIS[-1]:g} row all hybrid, "
        f"apl={_APL_AXIS[0]:g} row all parent",
    )

    # --- Simulator: the same contrast on synthetic traces.  Long
    # critical sections with a high shared-write fraction produce long
    # write runs; short sections reproduce Dragon's home regime.
    records = 30_000 if fast else 100_000
    config = SimulationConfig()
    protocols = ("dragon", "wti", "hybrid-2", "hybrid-4", "hybrid-limit")
    simulated: dict[tuple[str, str], float] = {}
    sim_rows = []
    for regime, section_length in (("long-runs", 64), ("short-runs", 4)):
        trace_config = TraceConfig(
            cpus=4,
            records_per_cpu=records,
            section_length_mean=section_length,
            shared_write_fraction=0.5,
            readonly_section_fraction=0.1,
            flush_on_exit=False,
            seed=11,
        )
        trace = generate_trace(trace_config, name=f"hybrid-{regime}")
        for protocol in protocols:
            run = Machine(protocol, config).run(trace)
            simulated[regime, protocol] = run.processing_power
            sim_rows.append(
                (
                    regime,
                    protocol,
                    f"{run.processing_power:.3f}",
                    f"{run.bus_utilization:.3f}",
                    f"{run.data_miss_rate:.4f}",
                )
            )
    result.tables.append(
        TableData(
            title="simulation at 4 processors, 64K caches",
            headers=("regime", "protocol", "power", "bus busy", "msdat"),
            rows=tuple(sim_rows),
        )
    )
    hybrids = ("hybrid-2", "hybrid-4", "hybrid-limit")
    long_parents = max(
        simulated["long-runs", "dragon"], simulated["long-runs", "wti"]
    )
    result.add_check(
        "simulated-hybrids-beat-both-parents-on-long-runs",
        all(
            simulated["long-runs", hybrid] > long_parents
            for hybrid in hybrids
        ),
        "long runs: "
        + ", ".join(
            f"{protocol} {simulated['long-runs', protocol]:.2f}"
            for protocol in protocols
        ),
    )
    result.add_check(
        "simulated-dragon-reclaims-short-runs",
        all(
            simulated["short-runs", "dragon"]
            > simulated["short-runs", hybrid]
            for hybrid in hybrids
        ),
        "short runs: "
        + ", ".join(
            f"{protocol} {simulated['short-runs', protocol]:.2f}"
            for protocol in protocols
        ),
    )
    return result
