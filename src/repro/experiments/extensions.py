"""Extension experiments around directory coherence.

Both are marked extensions in DESIGN.md: the paper does not evaluate a
directory scheme, but its Section 6.3 explicitly claims that
Software-Flush at the low parameter range "approximates the
performance of hardware-based directory schemes".  These experiments
make that claim — and the classic update-versus-invalidate comparison
the Dragon choice implies — checkable.
"""

from __future__ import annotations

from repro.core import (
    DIRECTORY,
    DRAGON,
    SOFTWARE_FLUSH,
    BusSystem,
    NetworkSystem,
    WorkloadParams,
)
from repro.experiments.registry import register
from repro.experiments.result import ExperimentResult, Series, TableData

__all__ = []


@register(
    "extension-directory-vs-flush",
    "Extension: Software-Flush (low range) approximates a directory scheme",
    "Section 6.3 remark",
)
def directory_vs_flush(stages: int = 8, **_) -> ExperimentResult:
    """Network-scale comparison of Software-Flush and the directory model.

    Checks that at the low parameter range the two schemes' processing
    powers agree within 10%, and that the directory scheme (which
    needs no flush instructions or compiler support) stays at least as
    strong as Software-Flush across ranges.
    """
    network = NetworkSystem(stages)
    result = ExperimentResult(
        experiment_id="extension-directory-vs-flush",
        title=(
            f"Software-Flush vs full-map directory on a "
            f"{2**stages}-processor network"
        ),
    )
    rows = []
    powers: dict[tuple[str, str], float] = {}
    for level in ("low", "middle", "high"):
        params = WorkloadParams.at_level(level)
        for scheme in (SOFTWARE_FLUSH, DIRECTORY):
            prediction = network.evaluate(scheme, params)
            powers[scheme.name, level] = prediction.processing_power
            rows.append(
                (
                    level,
                    scheme.name,
                    f"{prediction.processing_power:.1f}",
                    f"{prediction.utilization:.3f}",
                    f"{prediction.request_rate:.3f}",
                )
            )
    result.tables.append(
        TableData(
            title="network processing power by range",
            headers=("range", "scheme", "power", "utilization", "m*t"),
            rows=tuple(rows),
        )
    )
    low_flush = powers["Software-Flush", "low"]
    low_directory = powers["Directory", "low"]
    result.add_check(
        "flush-low-approximates-directory",
        abs(low_flush - low_directory) <= 0.10 * low_directory,
        f"low range: Flush {low_flush:.1f} vs Directory "
        f"{low_directory:.1f}",
    )
    result.add_check(
        "directory-never-behind-flush",
        all(
            powers["Directory", level] >= 0.95 * powers["Software-Flush", level]
            for level in ("low", "middle", "high")
        ),
        "; ".join(
            f"{level}: dir {powers['Directory', level]:.1f} vs "
            f"flush {powers['Software-Flush', level]:.1f}"
            for level in ("low", "middle", "high")
        ),
    )

    # Ground the remark in *measured* workloads too: simulate a
    # cache-size family through the geometry-sweep API (Dragon runs on
    # the epoch-partitioned engine, so the whole family costs one trace
    # traversal and each cell's statistics are exactly those of a
    # per-config replay) and evaluate both schemes on the parameters
    # measured from each simulated cell.
    from repro.experiments.geometry import sweep_geometries
    from repro.sim import SimulationConfig, measure_workload_params
    from repro.trace import preset

    trace = preset("pops").generate(records_per_cpu=8_000)
    cache_sizes = (16384, 65536, 262144)
    grid = sweep_geometries("dragon", trace, cache_sizes)
    measured_rows = []
    measured: dict[tuple[str, int], float] = {}
    for cache_bytes in cache_sizes:
        run = grid[(cache_bytes, 16)]
        config = SimulationConfig(cache_bytes=cache_bytes)
        params = measure_workload_params(trace, config, run)
        for scheme in (SOFTWARE_FLUSH, DIRECTORY):
            prediction = network.evaluate(scheme, params)
            measured[scheme.name, cache_bytes] = prediction.processing_power
            measured_rows.append(
                (
                    f"{cache_bytes // 1024}K",
                    scheme.name,
                    f"{prediction.processing_power:.1f}",
                    f"{prediction.utilization:.3f}",
                )
            )
    result.tables.append(
        TableData(
            title="measured pops workloads (simulated cache-size family)",
            headers=("cache", "scheme", "power", "utilization"),
            rows=tuple(measured_rows),
        )
    )
    result.add_check(
        "directory-tracks-flush-on-measured-workloads",
        all(
            measured["Directory", size]
            >= 0.9 * measured["Software-Flush", size]
            for size in cache_sizes
        ),
        "; ".join(
            f"{size // 1024}K: dir {measured['Directory', size]:.1f} vs "
            f"flush {measured['Software-Flush', size]:.1f}"
            for size in cache_sizes
        ),
    )
    return result


@register(
    "extension-block-size",
    "Extension: cache block size, simulated end to end",
    "Section 2.2 context",
)
def block_size_effect(fast: bool = True, **_) -> ExperimentResult:
    """Vary the block size the paper fixes at 4 words (16 bytes).

    The analytical model deliberately holds miss rates constant
    ("We don't try to model those effects"), so block size can only be
    studied end to end: the simulator's miss rates respond to spatial
    locality while the derived cost table (block transfer cycles)
    charges bigger blocks more per miss.

    Checks: spatial locality cuts the miss rate going from 8 to 32
    bytes, but 64-byte blocks *raise* it again (false sharing of the
    two-block shared objects plus conflict pressure); with transfer
    costs rising linearly, the paper's 16-byte choice sits at the
    sweet spot.
    """
    from repro.core.operations import derive_bus_costs
    from repro.experiments.geometry import sweep_geometries
    from repro.sim import SimulationConfig
    from repro.trace import preset

    records = 40_000 if fast else None
    trace = (
        preset("pops").generate(records_per_cpu=records)
        if records
        else preset("pops").generate()
    )
    result = ExperimentResult(
        experiment_id="extension-block-size",
        title="Block size, simulated with matching transfer costs (pops)",
    )
    rows = []
    miss_rates = []
    powers = {}
    cache_bytes = SimulationConfig().cache_bytes
    block_sizes = (8, 16, 32, 64)
    # One sweep call covers the whole block-size axis; Dragon runs on
    # the epoch-partitioned engine, one exact trace traversal per block
    # size — and the sweep shares the trace's derived columns per block
    # size with every other study in the process.
    grid = sweep_geometries(
        "dragon", trace, (cache_bytes,), block_sizes=block_sizes
    )
    for block_bytes in block_sizes:
        costs = derive_bus_costs(block_words=block_bytes // 4)
        run = grid[(cache_bytes, block_bytes)]
        miss_rates.append(run.data_miss_rate)
        powers[block_bytes] = run.processing_power
        rows.append(
            (
                f"{block_bytes}B",
                f"{run.data_miss_rate:.4f}",
                f"{run.instruction_miss_rate:.4f}",
                f"{costs[_clean_miss()].channel_cycles:g}",
                f"{run.processing_power:.3f}",
            )
        )
    result.tables.append(
        TableData(
            title="4 processors, 64K caches, dragon protocol",
            headers=(
                "block", "msdat", "mains", "clean-miss bus cycles", "power",
            ),
            rows=tuple(rows),
        )
    )
    by_size = dict(zip((8, 16, 32, 64), miss_rates))
    result.add_check(
        "spatial-locality-then-false-sharing",
        by_size[32] < by_size[16] < by_size[8],
        "msdat by size: "
        + " -> ".join(f"{size}B {rate:.4f}" for size, rate in by_size.items()),
    )
    best = max(powers, key=powers.get)
    result.add_check(
        "sixteen-bytes-is-the-sweet-spot",
        powers[16] >= max(powers[8], powers[64]),
        f"best block {best}B; power by size: "
        + ", ".join(f"{size}B {power:.2f}" for size, power in powers.items()),
    )
    return result


def _clean_miss():
    from repro.core import Operation

    return Operation.CLEAN_MISS_MEMORY


@register(
    "ablation-why-dragon",
    "Extension: why Dragon — write-through-invalidate comparison",
    "Section 2.2.4 context",
)
def why_dragon(fast: bool = True, **_) -> ExperimentResult:
    """Justify the paper's snoopy-protocol choice quantitatively.

    The paper picked Dragon because Archibald & Baer found it among
    the best snoopy protocols.  We model and simulate the classical
    alternative — write-through caches invalidating on bus writes —
    and check both that Dragon dominates it at every system size and
    that WTI's write-through traffic saturates the bus far earlier.
    """
    from repro.core import WRITE_THROUGH_INVALIDATE
    from repro.sim import SimulationConfig, run_geometry_family
    from repro.trace import preset

    params = WorkloadParams.middle()
    bus = BusSystem()
    result = ExperimentResult(
        experiment_id="ablation-why-dragon",
        title="Dragon vs write-through-invalidate snooping",
        xlabel="processors",
        ylabel="processing power",
    )
    counts = tuple(range(1, 17))
    for scheme in (DRAGON, WRITE_THROUGH_INVALIDATE):
        predictions = bus.sweep(scheme, params, counts)
        result.series.append(
            Series(
                scheme.name,
                tuple(float(p.processors) for p in predictions),
                tuple(p.processing_power for p in predictions),
            )
        )
    dragon_power = result.series_by_label("Dragon")
    wti_power = result.series_by_label("WTI")
    result.add_check(
        "dragon-dominates-everywhere",
        all(d >= w for d, w in zip(dragon_power.y, wti_power.y)),
        f"at n=16: Dragon {dragon_power.y_at(16):.2f} vs "
        f"WTI {wti_power.y_at(16):.2f}",
    )
    wti_saturation = bus.saturation_processing_power(
        WRITE_THROUGH_INVALIDATE, params
    )
    dragon_saturation = bus.saturation_processing_power(DRAGON, params)
    result.add_check(
        "write-through-traffic-saturates-early",
        wti_saturation <= 0.5 * dragon_saturation,
        f"saturation power: WTI {wti_saturation:.1f} vs Dragon "
        f"{dragon_saturation:.1f}",
    )

    records = 30_000 if fast else None
    trace = (
        preset("thor").generate(records_per_cpu=records)
        if records
        else preset("thor").generate()
    )
    # Both cells ride the epoch-partitioned family path: exact
    # per-config statistics from one trace traversal per protocol.
    config = SimulationConfig()
    dragon_sim = run_geometry_family(
        "dragon", trace, (config.cache_bytes,)
    )[config.cache_bytes]
    wti_sim = run_geometry_family(
        "wti", trace, (config.cache_bytes,)
    )[config.cache_bytes]
    result.tables.append(
        TableData(
            title="simulation at 4 processors (thor)",
            headers=("protocol", "power", "bus utilization"),
            rows=(
                (
                    "dragon",
                    f"{dragon_sim.processing_power:.3f}",
                    f"{dragon_sim.bus_utilization:.3f}",
                ),
                (
                    "wti",
                    f"{wti_sim.processing_power:.3f}",
                    f"{wti_sim.bus_utilization:.3f}",
                ),
            ),
        )
    )
    result.add_check(
        "simulation-agrees",
        dragon_sim.processing_power > wti_sim.processing_power
        and wti_sim.bus_utilization > dragon_sim.bus_utilization,
        f"sim power {dragon_sim.processing_power:.2f} vs "
        f"{wti_sim.processing_power:.2f}; bus busy "
        f"{dragon_sim.bus_utilization:.2f} vs "
        f"{wti_sim.bus_utilization:.2f}",
    )
    return result


@register(
    "extension-flush-policies",
    "Extension: compiler flush-placement policies, measured",
    "Section 5.3 / Conclusion remark",
)
def flush_policy_comparison(fast: bool = True, **_) -> ExperimentResult:
    """Measure the compiler design space the paper speculates about.

    The same reference stream is re-flushed under three policies —
    eager (flush every shared reference), section (flush at critical
    section exits), oracle (flush only when the run actually ends) —
    and replayed through the Software-Flush simulator.

    Checks: achieved apl and processing power are ordered
    eager < section <= oracle, and the oracle's achieved apl
    matches the paper's run-length estimator (which the paper itself
    calls an *optimistic* — i.e. oracle — estimate).
    """
    from repro.sim import Machine, SimulationConfig
    from repro.trace import preset
    from repro.trace.flushing import apply_flush_policy, implied_apl
    from repro.trace.stats import shared_run_lengths

    records = 40_000 if fast else None
    base_trace = (
        preset("thor").generate(records_per_cpu=records)
        if records
        else preset("thor").generate()
    )
    machine = Machine("swflush", SimulationConfig())
    result = ExperimentResult(
        experiment_id="extension-flush-policies",
        title="Flush-placement policies on one reference stream (thor)",
    )
    rows = []
    measured: dict[str, tuple[float, float]] = {}
    for policy in ("eager", "section", "oracle"):
        trace = apply_flush_policy(base_trace, policy)
        run = machine.run(trace)
        apl = implied_apl(trace)
        measured[policy] = (apl, run.processing_power)
        rows.append(
            (
                policy,
                f"{apl:.2f}",
                f"{run.processing_power:.3f}",
                f"{run.data_miss_rate:.4f}",
            )
        )
    result.tables.append(
        TableData(
            title="4 processors, 64K caches, swflush protocol",
            headers=("policy", "achieved apl", "power", "msdat"),
            rows=tuple(rows),
        )
    )
    result.add_check(
        "policy-ordering",
        measured["eager"][1] < measured["section"][1] <= measured["oracle"][1]
        and measured["eager"][0] < measured["section"][0]
        < measured["oracle"][0],
        "; ".join(
            f"{policy}: apl {apl:.1f}, power {power:.2f}"
            for policy, (apl, power) in measured.items()
        ),
    )
    run_lengths = shared_run_lengths(base_trace)
    mean_run = (
        sum(sum(runs) for runs in run_lengths.values())
        / sum(len(runs) for runs in run_lengths.values())
    )
    oracle_apl = measured["oracle"][0]
    result.add_check(
        "oracle-apl-equals-run-length-estimate",
        abs(oracle_apl - mean_run) <= 0.05 * mean_run,
        f"oracle achieved apl {oracle_apl:.2f} vs mean run length "
        f"{mean_run:.2f}",
    )
    return result


@register(
    "extension-network-validation",
    "Extension: validate Patel's network model by flit-level simulation",
    "Section 6.2 remark",
)
def network_model_validation(fast: bool = True, **_) -> ExperimentResult:
    """The validation the paper says is missing.

    Section 6.2: "We are not aware of any validation of this model
    against multiprocessor traces."  We simulate an actual omega
    network of 2x2 switches — real per-switch collisions, random
    winners, source retransmission — under the two service
    disciplines, and compare the measured thinking fraction with the
    paper's closed-loop fixed point.

    Checks: the unit-request discipline (Patel's premise) matches the
    analytical ``U`` within 3% at every load point, and the
    circuit-holding discipline is never *worse* than the model
    predicts (holding a path avoids re-arbitrating every word).
    """
    from repro.sim.netsim import OmegaNetworkSimulator

    stages = 4 if fast else 6
    cycles = 8_000 if fast else 20_000
    simulator = OmegaNetworkSimulator(stages, seed=3)
    result = ExperimentResult(
        experiment_id="extension-network-validation",
        title=(
            f"Patel model vs flit-level omega simulation "
            f"({2**stages} processors)"
        ),
    )
    rows = []
    worst_unit_error = 0.0
    circuit_never_worse = True
    for think_mean, words in ((40.0, 1), (20.0, 4), (12.0, 4), (8.0, 4)):
        predicted = simulator.predicted(think_mean, words)
        unit = simulator.run(think_mean, words, cycles, mode="unit")
        circuit = simulator.run(think_mean, words, cycles, mode="circuit")
        unit_error = abs(
            unit.thinking_fraction - predicted.thinking_fraction
        ) / predicted.thinking_fraction
        worst_unit_error = max(worst_unit_error, unit_error)
        circuit_never_worse = circuit_never_worse and (
            circuit.thinking_fraction
            >= predicted.thinking_fraction - 0.02
        )
        rows.append(
            (
                f"{think_mean:g}",
                str(words),
                f"{predicted.thinking_fraction:.3f}",
                f"{unit.thinking_fraction:.3f}",
                f"{circuit.thinking_fraction:.3f}",
            )
        )
    result.tables.append(
        TableData(
            title="thinking fraction U: model vs simulation",
            headers=(
                "think mean", "words", "model", "sim unit", "sim circuit",
            ),
            rows=tuple(rows),
        )
    )
    result.add_check(
        "unit-request-premise-validates",
        worst_unit_error <= 0.03,
        f"worst |error| under the unit discipline "
        f"{100 * worst_unit_error:.1f}%",
    )
    result.add_check(
        "circuit-holding-not-worse-than-model",
        circuit_never_worse,
        "holding an established path re-arbitrates less, so the "
        "approximation errs pessimistic",
    )
    return result


@register(
    "extension-migration",
    "Extension: what process migration would have cost",
    "Section 3 remark",
)
def migration_effect(fast: bool = True, **_) -> ExperimentResult:
    """The paper's traces "do not include process migration"; this
    experiment shows what that omission hides.  Migrating a process
    moves its whole working set to a cold cache, so miss rates — and
    with them bus load and contention — rise sharply as the migration
    interval shrinks.

    Checks: data and instruction miss rates increase monotonically as
    migration becomes more frequent, and even infrequent migration
    (once per ~20k references per CPU pair) costs double-digit
    processing power.
    """
    import dataclasses

    from repro.sim import Machine, SimulationConfig
    from repro.trace import TraceConfig, generate_trace

    records = 40_000 if fast else 120_000
    base = TraceConfig(cpus=4, records_per_cpu=records, seed=9)
    machine = Machine("dragon", SimulationConfig())
    result = ExperimentResult(
        experiment_id="extension-migration",
        title="Effect of process migration on a Dragon bus system",
    )
    intervals = (0, 40_000, 20_000, 10_000, 5_000)
    rows = []
    miss_rates = []
    powers = []
    for interval in intervals:
        config = dataclasses.replace(base, migration_interval=interval)
        run = machine.run(generate_trace(config, name=f"mig{interval}"))
        miss_rates.append(run.data_miss_rate)
        powers.append(run.processing_power)
        rows.append(
            (
                "never" if interval == 0 else str(interval),
                f"{run.data_miss_rate:.4f}",
                f"{run.instruction_miss_rate:.4f}",
                f"{run.processing_power:.3f}",
            )
        )
    result.tables.append(
        TableData(
            title="4 processors, 64K caches, dragon protocol",
            headers=(
                "records between migrations", "msdat", "mains", "power",
            ),
            rows=tuple(rows),
        )
    )
    result.add_check(
        "migration-raises-miss-rates",
        all(later >= earlier for earlier, later in zip(miss_rates, miss_rates[1:])),
        " -> ".join(f"{rate:.4f}" for rate in miss_rates),
    )
    result.add_check(
        "even-rare-migration-is-expensive",
        powers[1] <= 0.9 * powers[0],
        f"power {powers[0]:.2f} (never) vs {powers[1]:.2f} "
        f"(every {intervals[1]} records)",
    )
    return result


@register(
    "ablation-service-model",
    "Extension: exponential vs measured-mixture bus service times",
    "Section 3 remark",
)
def service_model_ablation(fast: bool = True, **_) -> ExperimentResult:
    """Does fixing the service-time distribution fix the model error?

    The paper attributes its contention overestimate to "exponential
    service times, while the simulations use fixed bus service times".
    The extension solver models transactions at their real granularity
    with the exact variance of the operation mix.  Two findings are
    checked:

    * swapping the service distribution moves the prediction by only a
      few percent — the exponential assumption is a second-order error
      source, not the dominant one;
    * both model variants stay within the validation error budget of
      the simulator.
    """
    from repro.core.model import transaction_moments
    from repro.core.operations import CostTable
    from repro.sim import Machine, SimulationConfig, measure_workload_params
    from repro.trace import preset

    records = 40_000 if fast else None
    trace = (
        preset("pops").generate(records_per_cpu=records)
        if records
        else preset("pops").generate()
    )
    config = SimulationConfig()
    simulated = Machine("dragon", config).run(trace)
    params = measure_workload_params(trace, config, simulated)

    moments = transaction_moments(DRAGON, params, CostTable.bus())
    result = ExperimentResult(
        experiment_id="ablation-service-model",
        title="Bus service-time distribution: model variants vs simulator",
    )
    rows = []
    errors = {}
    for model in ("exponential", "measured"):
        bus = BusSystem(service_model=model)
        predicted = bus.evaluate(DRAGON, params, trace.cpus).processing_power
        errors[model] = (
            predicted - simulated.processing_power
        ) / simulated.processing_power
        rows.append(
            (
                model,
                f"{predicted:.3f}",
                f"{simulated.processing_power:.3f}",
                f"{100 * errors[model]:+.1f}%",
            )
        )
    result.tables.append(
        TableData(
            title=f"Dragon on pops at {trace.cpus} processors",
            headers=("service model", "model power", "sim power", "error"),
            rows=tuple(rows),
        )
    )
    gap = abs(errors["measured"] - errors["exponential"])
    result.add_check(
        "distribution-choice-is-second-order",
        gap <= 0.05,
        f"prediction gap between service models {100 * gap:.2f}% "
        f"(mixture CV^2 = {moments.cv2:.2f}, mean service "
        f"{moments.mean_service:.2f} cycles)",
    )
    result.add_check(
        "both-variants-within-budget",
        all(abs(error) <= 0.12 for error in errors.values()),
        "; ".join(
            f"{model}: {100 * error:+.1f}%" for model, error in errors.items()
        ),
    )
    return result


@register(
    "extension-update-vs-invalidate",
    "Extension: Dragon (update) vs directory (invalidate) in simulation",
    "Section 2.2.4 context",
)
def update_vs_invalidate(fast: bool = True, **_) -> ExperimentResult:
    """Run the update and invalidate engines on identical traces.

    The paper picked Dragon because Archibald & Baer found update
    protocols strong on bus workloads.  On our section-structured
    traces the two mechanisms trade off exactly as the textbooks say:
    invalidation converts re-reads into coherence misses, updates
    convert every shared store into bus traffic.  The checks pin the
    mechanism-level facts rather than a winner:

    * the directory run never has a *lower* data miss rate than Dragon
      on the same trace (invalidations can only add misses);
    * Dragon issues broadcasts, the directory issues invalidations,
      and the two runs stay within 25% of each other's processing
      power on these workloads.
    """
    from repro.core import Operation
    from repro.sim import Machine, SimulationConfig
    from repro.trace import preset

    records = 40_000 if fast else None
    config = SimulationConfig()
    result = ExperimentResult(
        experiment_id="extension-update-vs-invalidate",
        title="Write-update vs write-invalidate on identical traces",
    )
    rows = []
    agreements = []
    for workload in ("thor", "pero"):
        trace = (
            preset(workload).generate(records_per_cpu=records)
            if records
            else preset(workload).generate()
        )
        dragon = Machine("dragon", config).run(trace)
        directory = Machine("directory", config).run(trace)
        rows.append(
            (
                workload,
                f"{dragon.processing_power:.3f}",
                f"{directory.processing_power:.3f}",
                f"{dragon.operation_counts[Operation.WRITE_BROADCAST]}",
                f"{directory.operation_counts[Operation.INVALIDATE]}",
                f"{directory.protocol_stats.coherence_misses}",
            )
        )
        result.add_check(
            f"invalidation-adds-misses-{workload}",
            directory.data_miss_rate >= dragon.data_miss_rate - 1e-9,
            f"msdat directory {directory.data_miss_rate:.4f} >= "
            f"dragon {dragon.data_miss_rate:.4f}",
        )
        agreements.append(
            abs(directory.processing_power - dragon.processing_power)
            / dragon.processing_power
        )
    result.tables.append(
        TableData(
            title="simulation at 4 processors, 64K caches",
            headers=(
                "workload", "dragon power", "directory power",
                "broadcasts", "invalidations", "coherence misses",
            ),
            rows=tuple(rows),
        )
    )
    result.add_check(
        "mechanisms-comparable-on-these-workloads",
        max(agreements) <= 0.25,
        f"largest power gap {100 * max(agreements):.1f}%",
    )
    return result
