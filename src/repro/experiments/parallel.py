"""Parallel experiment execution over picklable work items.

The validation sweeps are embarrassingly parallel: each
(workload, protocol, cache-size) cell simulates and evaluates
independently of the others.  :func:`parallel_map` fans such cells out
across worker processes while keeping the *contract* that makes the
result trustworthy:

* the worker function must be a module-level callable and every item
  picklable, so cells can cross a process boundary;
* results come back in input order (``ProcessPoolExecutor.map``), so a
  parallel run is record-for-record identical to the serial one — the
  only difference is wall-clock time.

Serial execution (``jobs`` of ``None``, ``0``, or ``1``, or a single
item) never touches multiprocessing at all, so debuggers, profilers,
and coverage keep working on the default path.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, TypeVar

__all__ = ["parallel_map", "resolve_workers"]

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")


def resolve_workers(jobs: int | None, items: int) -> int:
    """Worker-process count for ``jobs`` requested over ``items`` cells.

    ``None``/``0``/``1`` (and negative values) mean serial; otherwise
    the explicit request is honoured (like ``make -j``, even past the
    CPU count — the OS time-slices), capped only by the number of
    items, since idle workers are pure startup cost.
    """
    if jobs is None or jobs <= 1 or items <= 1:
        return 1
    return min(jobs, items)


def parallel_map(
    fn: Callable[[_ItemT], _ResultT],
    items: Iterable[_ItemT],
    jobs: int | None = None,
) -> list[_ResultT]:
    """``[fn(item) for item in items]``, optionally across processes.

    Args:
        fn: module-level (picklable) worker function.
        items: picklable work items.
        jobs: requested parallelism; see :func:`resolve_workers`.

    Returns:
        Results in the same order as ``items``, regardless of which
        worker finished first.
    """
    work = list(items)
    workers = resolve_workers(jobs, len(work))
    if workers == 1:
        return [fn(item) for item in work]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, work))
