"""Parallel experiment execution over picklable work items.

The validation sweeps are embarrassingly parallel: each
(workload, protocol, cache-size) cell simulates and evaluates
independently of the others.  :func:`parallel_map` fans such cells out
across worker processes while keeping the *contract* that makes the
result trustworthy:

* the worker function must be a module-level callable and every item
  picklable, so cells can cross a process boundary;
* results come back in input order, so a parallel run is
  record-for-record identical to the serial one — the only difference
  is wall-clock time.

Serial execution (``jobs`` of ``None``, ``0``, or ``1``, or a single
item) never touches multiprocessing at all, so debuggers, profilers,
and coverage keep working on the default path.

Failure semantics
-----------------

A cell that raises always surfaces as a :class:`CellExecutionError`
naming the failing cell's index and work-item ``repr`` (the original
exception is chained as ``__cause__`` serially, and carried as
formatted text from worker processes) — a sweep failure is never an
anonymous traceback from an unknown cell.  With ``resilient=True`` the
sweep does not abort at all: each failing cell yields a
:class:`CellFailure` value in its result slot, completed cells are
kept, and even a worker process dying outright (OOM, segfault —
``BrokenProcessPool``) costs only the cells that were in flight.

Observability
-------------

When a :class:`repro.obs.monitor.SweepMonitor` is installed (the
``swcc`` CLI does this), every ``parallel_map`` call is routed through
it: cells are timed, logged to the run manifest, checkpointed as they
complete, and — on ``--resume`` — served from a previous run's
checkpoint instead of re-executing.
"""

from __future__ import annotations

import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Iterable, TypeVar

__all__ = [
    "CellExecutionError",
    "CellFailure",
    "execute_map",
    "parallel_map",
    "resolve_workers",
    "validate_jobs",
]

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")


@dataclass(frozen=True)
class CellFailure:
    """One sweep cell's failure, captured as a value (resilient mode).

    Attributes:
        index: position of the failing cell in the sweep's work list.
        item: ``repr`` of the work item (never the item itself, which
            may not outlive the worker).
        error: ``"ExceptionType: message"`` of what the cell raised,
            or a description of the worker's death.
        traceback: formatted traceback from the executing process
            (empty when the worker died before it could format one).
    """

    index: int
    item: str
    error: str
    traceback: str = ""

    def __str__(self) -> str:
        return f"cell {self.index} ({self.item}): {self.error}"


class CellExecutionError(RuntimeError):
    """A sweep cell raised; carries which cell and what it was running.

    Raised in non-resilient mode in place of the cell's bare
    exception so a 500-cell sweep failure is attributable.  Picklable
    (it crosses the worker/parent process boundary).
    """

    def __init__(self, index: int, item: str, error: str, tb: str = ""):
        super().__init__(f"sweep cell {index} ({item}) failed: {error}")
        self.index = index
        self.item = item
        self.error = error
        self.worker_traceback = tb

    def __reduce__(self):
        return (
            type(self),
            (self.index, self.item, self.error, self.worker_traceback),
        )

    def as_failure(self) -> CellFailure:
        return CellFailure(
            index=self.index,
            item=self.item,
            error=self.error,
            traceback=self.worker_traceback,
        )


def validate_jobs(jobs: int | None) -> int | None:
    """Validate a ``jobs`` request; returns it unchanged.

    ``None``/``0``/``1`` mean serial; values above 1 request that many
    workers.  Negative values are a contradiction (not a "more serial
    than serial") and raise — both the CLI ``--jobs`` type and
    :func:`resolve_workers` funnel through here, so the library and
    the command line reject the same inputs with the same message.

    Raises:
        ValueError: if ``jobs`` is negative.
    """
    if jobs is not None and jobs < 0:
        raise ValueError(
            f"jobs must be >= 0 (None/0/1 = serial), got {jobs}"
        )
    return jobs


def resolve_workers(jobs: int | None, items: int) -> int:
    """Worker-process count for ``jobs`` requested over ``items`` cells.

    ``None``/``0``/``1`` mean serial; otherwise the explicit request
    is honoured (like ``make -j``, even past the CPU count — the OS
    time-slices), capped only by the number of items, since idle
    workers are pure startup cost.

    Raises:
        ValueError: if ``jobs`` is negative (see :func:`validate_jobs`).
    """
    validate_jobs(jobs)
    if jobs is None or jobs <= 1 or items <= 1:
        return 1
    return min(jobs, items)


def _chunk_size(items: int, workers: int) -> int:
    """Cells per IPC message on the chunked fast path.

    Aiming for ~4 chunks per worker keeps the pool load-balanced while
    ensuring many-small-cell sweeps (hundreds of sub-millisecond
    cells) do not serialize on one pickle round-trip per cell.
    """
    return max(1, items // (workers * 4))


def _describe(error: BaseException) -> str:
    return f"{type(error).__name__}: {error}"


def _indexed_call(task: tuple) -> object:
    """Worker shim: run one cell, attributing any failure to it."""
    fn, index, item = task
    try:
        return fn(item)
    except Exception as error:
        raise CellExecutionError(
            index, repr(item), _describe(error), traceback.format_exc()
        ) from error


def _instrumented_call(task: tuple) -> tuple:
    """Worker shim: like :func:`_indexed_call`, plus cell metrics."""
    from repro.obs.metrics import measure_call

    fn, index, item = task
    try:
        return measure_call(fn, item)
    except Exception as error:
        raise CellExecutionError(
            index, repr(item), _describe(error), traceback.format_exc()
        ) from error


def parallel_map(
    fn: Callable[[_ItemT], _ResultT],
    items: Iterable[_ItemT],
    jobs: int | None = None,
    *,
    resilient: bool = False,
    on_cell_done: Callable[[int, _ItemT, object], None] | None = None,
) -> list:
    """``[fn(item) for item in items]``, optionally across processes.

    Args:
        fn: module-level (picklable) worker function.
        items: picklable work items.
        jobs: requested parallelism; see :func:`resolve_workers`.
        resilient: capture each cell's exception as a
            :class:`CellFailure` in its result slot instead of
            aborting the sweep; completed cells are always returned.
        on_cell_done: called as ``on_cell_done(index, item, outcome)``
            the moment each cell completes (completion order, not
            input order) — the checkpointing hook.

    Returns:
        Results in the same order as ``items``.  In resilient mode,
        failed cells hold :class:`CellFailure` values.

    Raises:
        CellExecutionError: in non-resilient mode, when a cell raises.
    """
    work = list(items)
    from repro.obs.monitor import current_monitor

    monitor = current_monitor()
    if monitor is not None:
        return monitor.run_sweep(
            fn, work, jobs, resilient=resilient, on_cell_done=on_cell_done
        )
    done_hook = None
    if on_cell_done is not None:
        def done_hook(index, item, outcome, _metrics):
            on_cell_done(index, item, outcome)
    return execute_map(
        fn, work, jobs, resilient=resilient, on_cell_done=done_hook
    )


def execute_map(
    fn: Callable[[_ItemT], _ResultT],
    work: list,
    jobs: int | None = None,
    *,
    resilient: bool = False,
    collect_metrics: bool = False,
    on_cell_start: Callable[[int, _ItemT], None] | None = None,
    on_cell_done: Callable | None = None,
) -> list:
    """The execution core under :func:`parallel_map` (monitor-free).

    ``collect_metrics=True`` measures each cell in its executing
    process (wall time, records replayed, peak RSS) and passes the
    :class:`~repro.obs.metrics.CellMetrics` as a fourth argument to
    ``on_cell_done(index, item, outcome, metrics)``; without it the
    callback receives ``metrics=None``.  Returned outcomes never
    include the metrics.
    """
    workers = resolve_workers(jobs, len(work))
    if workers == 1:
        return _execute_serial(
            fn, work, resilient, collect_metrics, on_cell_start,
            on_cell_done,
        )
    if resilient or collect_metrics or on_cell_start or on_cell_done:
        return _execute_submit(
            fn, work, workers, resilient, collect_metrics, on_cell_start,
            on_cell_done,
        )
    # Plain fast path: chunked dispatch (one IPC round-trip per chunk,
    # not per cell), failures still attributed by the worker shim.
    tasks = [(fn, index, item) for index, item in enumerate(work)]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(
            pool.map(
                _indexed_call,
                tasks,
                chunksize=_chunk_size(len(tasks), workers),
            )
        )


def _execute_serial(
    fn, work, resilient, collect_metrics, on_cell_start, on_cell_done
) -> list:
    from repro.obs.metrics import measure_call

    results = []
    for index, item in enumerate(work):
        if on_cell_start is not None:
            on_cell_start(index, item)
        metrics = None
        try:
            if collect_metrics:
                outcome, metrics = measure_call(fn, item)
            else:
                outcome = fn(item)
        except Exception as error:
            if not resilient:
                raise CellExecutionError(
                    index, repr(item), _describe(error),
                    traceback.format_exc(),
                ) from error
            outcome = CellFailure(
                index=index,
                item=repr(item),
                error=_describe(error),
                traceback=traceback.format_exc(),
            )
        if on_cell_done is not None:
            on_cell_done(index, item, outcome, metrics)
        results.append(outcome)
    return results


def _execute_submit(
    fn, work, workers, resilient, collect_metrics, on_cell_start,
    on_cell_done,
) -> list:
    """Per-cell futures: required for resilience and per-cell hooks.

    Unlike ``pool.map``, a broken pool (worker OOM/segfault) here
    costs only the unfinished cells: everything already completed has
    its result, and in resilient mode the casualties become
    :class:`CellFailure` values.
    """
    call = _instrumented_call if collect_metrics else _indexed_call
    results: list = [None] * len(work)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = {}
        for index, item in enumerate(work):
            if on_cell_start is not None:
                on_cell_start(index, item)
            futures[pool.submit(call, (fn, index, item))] = (index, item)
        for future in as_completed(futures):
            index, item = futures[future]
            metrics = None
            try:
                value = future.result()
                if collect_metrics:
                    outcome, metrics = value
                else:
                    outcome = value
            except CellExecutionError as error:
                if not resilient:
                    pool.shutdown(wait=False, cancel_futures=True)
                    raise
                outcome = error.as_failure()
            except BrokenProcessPool:
                if not resilient:
                    raise
                outcome = CellFailure(
                    index=index,
                    item=repr(item),
                    error=(
                        "BrokenProcessPool: worker process died before "
                        "the cell finished (out of memory or crashed)"
                    ),
                )
            results[index] = outcome
            if on_cell_done is not None:
                on_cell_done(index, item, outcome, metrics)
    return results
