"""Result containers and text rendering for experiments."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["Check", "ExperimentResult", "Series", "TableData"]


@dataclass(frozen=True)
class Series:
    """One named curve: parallel ``x`` and ``y`` vectors."""

    label: str
    x: tuple[float, ...]
    y: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(
                f"series {self.label!r}: x and y lengths differ "
                f"({len(self.x)} vs {len(self.y)})"
            )

    @classmethod
    def from_points(
        cls, label: str, points: Sequence[tuple[float, float]]
    ) -> "Series":
        xs, ys = zip(*points) if points else ((), ())
        return cls(label=label, x=tuple(xs), y=tuple(ys))

    def y_at(self, x_value: float) -> float:
        """The y value at an exact x (raises if absent)."""
        try:
            return self.y[self.x.index(x_value)]
        except ValueError:
            raise KeyError(
                f"series {self.label!r} has no point at x={x_value}"
            ) from None


@dataclass(frozen=True)
class TableData:
    """A rendered-ready table: header row plus body rows."""

    title: str
    headers: tuple[str, ...]
    rows: tuple[tuple[str, ...], ...]

    def __post_init__(self) -> None:
        for row in self.rows:
            if len(row) != len(self.headers):
                raise ValueError(
                    f"table {self.title!r}: row width {len(row)} != "
                    f"header width {len(self.headers)}"
                )

    def render(self) -> str:
        widths = [
            max(len(self.headers[i]), *(len(row[i]) for row in self.rows))
            if self.rows
            else len(self.headers[i])
            for i in range(len(self.headers))
        ]
        lines = [self.title]
        lines.append(
            "  ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(
                "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class Check:
    """One shape assertion from the paper's prose.

    Attributes:
        name: short identifier of the claim.
        passed: whether the regenerated data satisfies it.
        detail: human-readable evidence (numbers involved).
    """

    name: str
    passed: bool
    detail: str = ""


@dataclass
class ExperimentResult:
    """Everything one experiment produced."""

    experiment_id: str
    title: str
    xlabel: str = ""
    ylabel: str = ""
    series: list[Series] = field(default_factory=list)
    tables: list[TableData] = field(default_factory=list)
    checks: list[Check] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def all_checks_pass(self) -> bool:
        return all(check.passed for check in self.checks)

    def series_by_label(self, label: str) -> Series:
        for series in self.series:
            if series.label == label:
                return series
        known = ", ".join(s.label for s in self.series)
        raise KeyError(f"no series {label!r}; have: {known}")

    def add_check(self, name: str, passed: bool, detail: str = "") -> None:
        self.checks.append(Check(name=name, passed=passed, detail=detail))

    def digest(self) -> str:
        """Content digest of the rendered report.

        Recorded in run manifests so two runs (e.g. a clean run and a
        ``--resume``) can be compared for byte-identical output
        without storing the report itself.
        """
        rendered = self.render().encode("utf-8")
        return "sha256:" + hashlib.sha256(rendered).hexdigest()

    def render(self, chart_width: int = 72, chart_height: int = 20) -> str:
        """Full text report: title, chart, tables, checks, notes."""
        from repro.experiments.report import ascii_chart, series_table

        blocks = [f"== {self.experiment_id}: {self.title} =="]
        if self.series:
            blocks.append(
                ascii_chart(
                    self.series,
                    width=chart_width,
                    height=chart_height,
                    xlabel=self.xlabel,
                    ylabel=self.ylabel,
                )
            )
            blocks.append(series_table(self.series, self.xlabel).render())
        for table in self.tables:
            blocks.append(table.render())
        if self.checks:
            lines = ["shape checks:"]
            for check in self.checks:
                mark = "PASS" if check.passed else "FAIL"
                lines.append(f"  [{mark}] {check.name}: {check.detail}")
            blocks.append("\n".join(lines))
        for note in self.notes:
            blocks.append(f"note: {note}")
        return "\n\n".join(blocks)
