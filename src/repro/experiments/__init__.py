"""Regeneration of every table and figure in the paper's evaluation.

Each experiment is a registered callable returning an
:class:`~repro.experiments.result.ExperimentResult` — series and/or
tables plus the *shape checks* the paper's prose asserts (who wins,
where curves saturate, which points cluster).  The checks are what
"reproduction" means here: absolute cycle counts depend on the
synthetic traces, but the qualitative structure must match.

Run experiments from Python::

    from repro.experiments import get_experiment
    result = get_experiment("figure5").run()
    print(result.render())

or from the command line: ``python -m repro run figure5``.
"""

from repro.experiments.registry import (
    EXPERIMENTS,
    Experiment,
    get_experiment,
    list_experiments,
    register,
)
from repro.experiments.result import (
    Check,
    ExperimentResult,
    Series,
    TableData,
)
from repro.experiments.surface import GridSpec, ModelSurface, sweep_grid
from repro.experiments.geometry import sweep_geometries

# Importing these modules populates the registry.
from repro.experiments import bus_discipline  # noqa: F401  (registration)
from repro.experiments import bus_figures  # noqa: F401
from repro.experiments import extensions  # noqa: F401
from repro.experiments import hybrid  # noqa: F401
from repro.experiments import network_figures  # noqa: F401
from repro.experiments import tables  # noqa: F401
from repro.experiments import validation  # noqa: F401

__all__ = [
    "Check",
    "EXPERIMENTS",
    "Experiment",
    "ExperimentResult",
    "GridSpec",
    "ModelSurface",
    "Series",
    "TableData",
    "get_experiment",
    "sweep_geometries",
    "sweep_grid",
    "list_experiments",
    "register",
]
