"""Table reproductions (paper Tables 1, 7, 8, 9) and model ablations.

Tables 1, 7, and 9 are inputs the paper publishes; reproducing them
means rebuilding them from first principles (block transfers, memory
latency, stage counts) and checking the published values drop out.
Table 8 is an output: the sensitivity of execution time to each
workload parameter.

The ``ablation*`` experiments are extensions marked as such in
DESIGN.md: they quantify design remarks the paper makes in passing.
"""

from __future__ import annotations

from repro.core import (
    ALL_SCHEMES,
    DRAGON,
    NO_CACHE,
    PARAMETER_RANGES,
    SOFTWARE_FLUSH,
    BufferedNetworkSystem,
    NetworkSystem,
    WorkloadParams,
    derive_bus_costs,
    derive_network_costs,
    sensitivity_table,
)
from repro.core.operations import Operation
from repro.experiments.registry import register
from repro.experiments.result import ExperimentResult, Series, TableData
from repro.experiments.surface import sweep_grid

__all__ = []

#: The published Table 1, for the derivation check.
_PUBLISHED_TABLE1 = {
    Operation.INSTRUCTION: (1, 0),
    Operation.CLEAN_MISS_MEMORY: (10, 7),
    Operation.DIRTY_MISS_MEMORY: (14, 11),
    Operation.READ_THROUGH: (5, 4),
    Operation.WRITE_THROUGH: (2, 1),
    Operation.CLEAN_FLUSH: (1, 0),
    Operation.DIRTY_FLUSH: (6, 4),
    Operation.WRITE_BROADCAST: (2, 1),
    Operation.CLEAN_MISS_CACHE: (9, 6),
    Operation.DIRTY_MISS_CACHE: (13, 10),
    Operation.CYCLE_STEAL: (1, 0),
}

#: The published Table 9 as (cpu, network) offsets from 2n.
_PUBLISHED_TABLE9 = {
    Operation.INSTRUCTION: (1, 0, False),
    Operation.CLEAN_MISS_MEMORY: (9, 6, True),
    Operation.DIRTY_MISS_MEMORY: (12, 9, True),
    Operation.CLEAN_FLUSH: (1, 0, False),
    Operation.DIRTY_FLUSH: (7, 5, True),
    Operation.WRITE_THROUGH: (3, 2, True),
    Operation.READ_THROUGH: (4, 3, True),
}


@register("table1", "System model: CPU and bus time per operation", "Table 1")
def table1(**_) -> ExperimentResult:
    costs = derive_bus_costs()
    result = ExperimentResult(
        experiment_id="table1",
        title="System model (bus machine, 4-word blocks)",
    )
    rows = []
    all_match = True
    for operation, (cpu, bus) in _PUBLISHED_TABLE1.items():
        derived = costs[operation]
        match = derived.cpu_cycles == cpu and derived.channel_cycles == bus
        all_match = all_match and match
        rows.append(
            (
                operation.value,
                f"{derived.cpu_cycles:g}",
                f"{derived.channel_cycles:g}",
                "ok" if match else f"paper: {cpu}/{bus}",
            )
        )
    result.tables.append(
        TableData(
            title="Table 1 (derived from machine primitives)",
            headers=("operation", "CPU time", "bus time", "vs paper"),
            rows=tuple(rows),
        )
    )
    result.add_check(
        "derivation-matches-published-table",
        all_match,
        "all 11 operations match the published cycle counts",
    )
    return result


@register("table7", "Workload parameter ranges", "Table 7")
def table7(**_) -> ExperimentResult:
    result = ExperimentResult(
        experiment_id="table7",
        title="Parameter ranges (low / middle / high)",
    )
    rows = []
    for name, parameter_range in PARAMETER_RANGES.items():
        if name == "apl":
            # Table 7 lists 1/apl.
            rows.append(
                (
                    "1/apl",
                    f"{1.0 / parameter_range.low:g}",
                    f"{1.0 / parameter_range.middle:g}",
                    f"{1.0 / parameter_range.high:g}",
                )
            )
        else:
            rows.append(
                (
                    name,
                    f"{parameter_range.low:g}",
                    f"{parameter_range.middle:g}",
                    f"{parameter_range.high:g}",
                )
            )
    result.tables.append(
        TableData(
            title="Table 7",
            headers=("parameter", "low", "middle", "high"),
            rows=tuple(rows),
        )
    )
    middle = WorkloadParams.middle()
    result.add_check(
        "middle-point-valid",
        middle.ls == 0.3 and middle.shd == 0.25,
        f"middle workload: ls={middle.ls}, shd={middle.shd}",
    )
    return result


@register("table8", "Sensitivity to parameter variation", "Table 8")
def table8(processors: int = 16, **_) -> ExperimentResult:
    """Percent change in execution time, parameter low→high.

    The published numeric cells are not available in our source text;
    the checks assert the ordering claims of Section 4's prose instead.
    """
    result = ExperimentResult(
        experiment_id="table8",
        title=f"Sensitivity of execution time at {processors} processors",
    )
    columns = {
        scheme.name: sensitivity_table(scheme, processors=processors)
        for scheme in ALL_SCHEMES
    }
    rows = []
    for parameter in PARAMETER_RANGES:
        label = "1/apl" if parameter == "apl" else parameter
        rows.append(
            (label,)
            + tuple(
                f"{columns[scheme.name][parameter].percent_change:+.1f}%"
                for scheme in ALL_SCHEMES
            )
        )
    result.tables.append(
        TableData(
            title="Table 8 (percent change, low→high, others middle)",
            headers=("parameter",) + tuple(s.name for s in ALL_SCHEMES),
            rows=tuple(rows),
        )
    )

    flush = {p: e.percent_change for p, e in columns["Software-Flush"].items()}
    result.add_check(
        "apl-dominates-software-flush",
        flush["apl"] > flush["shd"] > flush["ls"] > flush["msdat"],
        f"Software-Flush: apl {flush['apl']:.0f}% > shd {flush['shd']:.0f}% "
        f"> ls {flush['ls']:.0f}% > msdat {flush['msdat']:.0f}%",
    )
    nocache = {p: e.percent_change for p, e in columns["No-Cache"].items()}
    result.add_check(
        "nocache-like-flush-minus-apl",
        nocache["apl"] == 0.0 and nocache["shd"] > nocache["ls"] > 0.0,
        f"No-Cache: apl {nocache['apl']:.0f}%, shd {nocache['shd']:.0f}%, "
        f"ls {nocache['ls']:.0f}%",
    )
    dragon = {p: e.percent_change for p, e in columns["Dragon"].items()}
    result.add_check(
        "dragon-miss-rate-beats-sharing",
        dragon["msdat"] > dragon["shd"],
        f"Dragon: msdat {dragon['msdat']:.0f}% > shd {dragon['shd']:.0f}%",
    )
    result.add_check(
        "wr-unimportant",
        all(abs(columns[s.name]["wr"].percent_change) < 25.0
            for s in ALL_SCHEMES),
        "wr stays a second-order effect for every scheme",
    )
    return result


@register("table9", "Network system model", "Table 9")
def table9(stages: int = 8, **_) -> ExperimentResult:
    costs = derive_network_costs(stages)
    result = ExperimentResult(
        experiment_id="table9",
        title=f"Network system model at n={stages} stages",
    )
    rows = []
    all_match = True
    for operation, (cpu_offset, net_offset, scales) in _PUBLISHED_TABLE9.items():
        derived = costs[operation]
        expected_cpu = cpu_offset + (2 * stages if scales else 0)
        expected_net = net_offset + (2 * stages if scales else 0)
        match = (
            derived.cpu_cycles == expected_cpu
            and derived.channel_cycles == expected_net
        )
        all_match = all_match and match
        formula = (
            f"{cpu_offset}+2n / {net_offset}+2n" if scales
            else f"{cpu_offset} / {net_offset}"
        )
        rows.append(
            (
                operation.value,
                f"{derived.cpu_cycles:g}",
                f"{derived.channel_cycles:g}",
                formula,
                "ok" if match else "MISMATCH",
            )
        )
    result.tables.append(
        TableData(
            title=f"Table 9 (derived, n={stages})",
            headers=("operation", "CPU", "network", "paper formula", "check"),
            rows=tuple(rows),
        )
    )
    result.add_check(
        "derivation-matches-published-formulas",
        all_match,
        "all 7 operations match the published n-stage formulas",
    )
    return result


@register(
    "ablation-packet-switching",
    "Extension: packet switching favours No-Cache",
    "Section 6.3 remark",
)
def ablation_packet_switching(stages: int = 8, **_) -> ExperimentResult:
    """Circuit vs (extension) buffered packet-switched network.

    The paper conjectures: "Use of packet-switching would be more
    favorable to No-Cache" — many small messages benefit from skipping
    the end-to-end path setup.  We check that No-Cache's relative gain
    exceeds Software-Flush's.
    """
    params = WorkloadParams.middle()
    circuit = NetworkSystem(stages)
    packet = BufferedNetworkSystem(stages)
    result = ExperimentResult(
        experiment_id="ablation-packet-switching",
        title=f"Circuit vs packet switching, {2**stages} processors",
    )
    gains = {}
    rows = []
    for scheme in (SOFTWARE_FLUSH, NO_CACHE):
        circuit_power = circuit.evaluate(scheme, params).processing_power
        packet_power = packet.evaluate(scheme, params).processing_power
        gains[scheme.name] = packet_power / circuit_power
        rows.append(
            (
                scheme.name,
                f"{circuit_power:.1f}",
                f"{packet_power:.1f}",
                f"{gains[scheme.name]:.2f}x",
            )
        )
    result.tables.append(
        TableData(
            title="processing power by switching discipline",
            headers=("scheme", "circuit", "packet", "gain"),
            rows=tuple(rows),
        )
    )
    result.add_check(
        "packet-switching-favours-nocache",
        gains["No-Cache"] > gains["Software-Flush"],
        f"gain No-Cache {gains['No-Cache']:.2f}x vs "
        f"Software-Flush {gains['Software-Flush']:.2f}x",
    )
    return result


@register(
    "ablation-dragon-small-terms",
    "Extension: Dragon cache-supply and cycle-steal terms are small",
    "Section 2.2.4 remark",
)
def ablation_dragon_terms(processors: int = 16, **_) -> ExperimentResult:
    """Drop Dragon's two second-order effects and measure the change.

    The paper: "the last two effects [cache-supplied misses, cycle
    stealing] are small and could have been omitted from the model
    without significantly affecting our results."
    """
    full = WorkloadParams.middle()
    # oclean=1: no misses supplied from caches; nshd=0: no stealing.
    stripped = full.replace(oclean=1.0, nshd=0.0)
    result = ExperimentResult(
        experiment_id="ablation-dragon-small-terms",
        title="Dragon model with and without second-order terms",
        xlabel="processors",
        ylabel="processing power",
    )
    counts = tuple(range(1, processors + 1))
    for label, params in (("full", full), ("stripped", stripped)):
        surface = sweep_grid(DRAGON, params, processors=counts)
        x, y = surface.series("processors")
        result.series.append(Series(label, x, y))
    full_power = result.series_by_label("full").y_at(processors)
    stripped_power = result.series_by_label("stripped").y_at(processors)
    change = abs(stripped_power - full_power) / full_power
    result.add_check(
        "terms-are-second-order",
        change < 0.03,
        f"dropping both terms changes power at n={processors} by "
        f"{100 * change:.2f}%",
    )
    return result


@register(
    "ablation-replay-order",
    "Extension: trace-order replay distorts contention",
    "Section 3 remark",
)
def ablation_replay_order(fast: bool = True, **_) -> ExperimentResult:
    """Quantify the reference-order distortion the paper discusses.

    Replaying strictly in trace order lets processors whose clocks
    drifted ahead capture the bus "from the future"; time-ordered
    replay removes the artefact.  The check asserts the distortion
    inflates contention (trace order shows lower processing power).
    """
    from repro.sim import Machine, SimulationConfig
    from repro.trace import preset

    records = 40_000 if fast else None
    trace = (
        preset("pops").generate(records_per_cpu=records)
        if records
        else preset("pops").generate()
    )
    machine = Machine("dragon", SimulationConfig())
    result = ExperimentResult(
        experiment_id="ablation-replay-order",
        title="Replay-order sensitivity of the simulator (pops, Dragon, n=4)",
    )
    rows = []
    powers = {}
    for order in ("time", "trace"):
        run = machine.run(trace, order=order)
        powers[order] = run.processing_power
        rows.append(
            (
                order,
                f"{run.processing_power:.3f}",
                f"{run.wait_cycles_per_instruction:.4f}",
            )
        )
    result.tables.append(
        TableData(
            title="replay order",
            headers=("order", "processing power", "wait cycles/instr"),
            rows=tuple(rows),
        )
    )
    result.add_check(
        "trace-order-inflates-contention",
        powers["trace"] <= powers["time"],
        f"trace-order power {powers['trace']:.3f} <= "
        f"time-order power {powers['time']:.3f}",
    )
    return result
