"""Model-versus-simulation validation (paper Figures 1-3, Section 3).

The paper validates the analytical model by simulating multiprocessor
address traces and comparing predicted against simulated processing
power for the Base and Dragon schemes at 16K/64K/256K caches.  We do
the same with the synthetic ATUM-like traces: for each processor
count, workload parameters are measured from the (restricted) trace at
the simulated cache configuration and fed to the model — the paper's
own methodology ("a parameter value must be input for each point under
consideration").
"""

from __future__ import annotations

from functools import lru_cache
from typing import Sequence

from repro.core import BASE, DRAGON, BusSystem, CoherenceScheme
from repro.experiments.parallel import CellFailure, parallel_map
from repro.experiments.registry import register
from repro.experiments.result import ExperimentResult, Series, TableData
from repro.sim import (
    SimulationConfig,
    measure_workload_params,
    run_geometry_family,
)
from repro.trace import Trace, preset

__all__ = ["model_vs_simulation", "validation_points", "validation_sweep"]

_SCHEME_BY_PROTOCOL: dict[str, CoherenceScheme] = {
    "base": BASE,
    "dragon": DRAGON,
}

#: records_per_cpu used when an experiment is run with fast=True.
_FAST_RECORDS = 40_000


@lru_cache(maxsize=16)
def _trace(workload: str, records_per_cpu: int | None) -> Trace:
    recipe = preset(workload)
    if records_per_cpu is None:
        return recipe.generate()
    return recipe.generate(records_per_cpu=records_per_cpu)


@lru_cache(maxsize=32)
def _restricted(
    workload: str, records_per_cpu: int | None, cpus: int
) -> Trace:
    """The workload trace restricted to ``cpus`` processors.

    Hoisted out of the sweep loops: every (protocol, cache-size) cell
    at the same processor count shares one restriction (and, through
    the derived-column memo in :mod:`repro.trace.derived`, one set of
    decoded column arrays) instead of re-deriving both per cell.
    """
    trace = _trace(workload, records_per_cpu)
    return trace.restricted_to(cpus) if cpus != trace.cpus else trace


def validation_sweep(
    workload: str,
    protocol: str,
    cache_sizes: Sequence[int],
    cpu_counts: Sequence[int],
    records_per_cpu: int | None = None,
) -> dict[int, list[dict]]:
    """Simulated and predicted performance over a cache-size family.

    The whole ``cache_sizes`` axis is simulated per processor count
    with :func:`repro.sim.run_geometry_family` — a single trace
    traversal for the geometry-local protocols (one-pass engine) and
    for Dragon/WTI (epoch-partitioned engine), per-config replay only
    for protocols with neither — with statistics identical to per-cell
    ``Machine.run`` either way.

    Returns:
        ``{cache_bytes: [point per processor count]}`` where each
        point has keys ``cpus``, ``simulated_power``,
        ``predicted_power``, ``relative_error``, and the measured miss
        rates.
    """
    scheme = _SCHEME_BY_PROTOCOL[protocol]
    bus = BusSystem()
    points: dict[int, list[dict]] = {size: [] for size in cache_sizes}
    for cpus in cpu_counts:
        restricted = _restricted(workload, records_per_cpu, cpus)
        family = run_geometry_family(protocol, restricted, cache_sizes)
        for cache_bytes in cache_sizes:
            simulated = family[cache_bytes]
            config = SimulationConfig(cache_bytes=cache_bytes)
            # Dragon measurement run reused when the protocol is dragon.
            measurement = simulated if protocol == "dragon" else None
            params = measure_workload_params(restricted, config, measurement)
            predicted = bus.evaluate(scheme, params, cpus)
            simulated_power = simulated.processing_power
            predicted_power = predicted.processing_power
            points[cache_bytes].append(
                {
                    "cpus": cpus,
                    "simulated_power": simulated_power,
                    "predicted_power": predicted_power,
                    "relative_error": (
                        (predicted_power - simulated_power) / simulated_power
                        if simulated_power
                        else 0.0
                    ),
                    "msdat": params.msdat,
                    "mains": params.mains,
                }
            )
    return points


def validation_points(
    workload: str,
    protocol: str,
    cache_bytes: int,
    cpu_counts: Sequence[int],
    records_per_cpu: int | None = None,
) -> list[dict]:
    """Single-cache-size convenience wrapper over
    :func:`validation_sweep`."""
    sweep = validation_sweep(
        workload, protocol, (cache_bytes,), cpu_counts, records_per_cpu
    )
    return sweep[cache_bytes]


def _sweep_cell(cell: tuple) -> dict[int, list[dict]]:
    """Worker for :func:`parallel_map`: one (workload, protocol) group
    of a validation sweep, covering its whole cache-size family in one
    traversal per processor count.  Module-level and fed a plain tuple
    so it pickles into worker processes."""
    workload, protocol, cache_sizes, cpu_counts, records_per_cpu = cell
    return validation_sweep(
        workload, protocol, cache_sizes, cpu_counts, records_per_cpu
    )


def model_vs_simulation(
    experiment_id: str,
    title: str,
    workloads: Sequence[str],
    protocols: Sequence[str],
    cache_sizes: Sequence[int],
    cpu_counts: Sequence[int],
    records_per_cpu: int | None,
    error_budget: float = 0.10,
    jobs: int | None = None,
) -> ExperimentResult:
    """Generic validation sweep with an error-budget shape check.

    ``jobs`` fans the independent (workload, protocol, cache-size)
    cells out over worker processes; cell results are consumed in the
    same nested-loop order either way, so the rendered figure is
    identical to a serial run.
    """
    result = ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        xlabel="processors",
        ylabel="processing power",
    )
    # One cell per (workload, protocol): the cache-size axis is swept
    # inside the cell by ``run_geometry_family`` — a single trace
    # traversal per processor count on the one-pass and epoch engines
    # (which now cover every paper protocol but directory) — so cells
    # stay coarse enough to amortize and the rendered output is
    # identical to the old per-cache-size cells.
    cells = [
        (
            workload,
            protocol,
            tuple(cache_sizes),
            tuple(cpu_counts),
            records_per_cpu,
        )
        for workload in workloads
        for protocol in protocols
    ]
    cell_points = parallel_map(_sweep_cell, cells, jobs)
    # Under a resilient monitor (``swcc run``) a crashed cell comes
    # back as a CellFailure value instead of aborting the sweep: render
    # every completed cell and report the casualties as a failing
    # check.  A clean run takes neither branch, so its output is
    # untouched (the resume byte-identity guarantee depends on this).
    failures = [
        outcome for outcome in cell_points if isinstance(outcome, CellFailure)
    ]
    rows = []
    worst = 0.0
    for cell, sweep in zip(cells, cell_points):
        if isinstance(sweep, CellFailure):
            continue
        workload, protocol = cell[:2]
        for cache_bytes in cache_sizes:
            points = sweep[cache_bytes]
            tag = _series_tag(
                workload, protocol, cache_bytes,
                len(workloads) > 1, len(protocols) > 1,
                len(cache_sizes) > 1,
            )
            result.series.append(
                Series(
                    f"sim {tag}".strip(),
                    tuple(float(p["cpus"]) for p in points),
                    tuple(p["simulated_power"] for p in points),
                )
            )
            result.series.append(
                Series(
                    f"model {tag}".strip(),
                    tuple(float(p["cpus"]) for p in points),
                    tuple(p["predicted_power"] for p in points),
                )
            )
            for point in points:
                worst = max(worst, abs(point["relative_error"]))
                rows.append(
                    (
                        workload,
                        protocol,
                        f"{cache_bytes // 1024}K",
                        str(point["cpus"]),
                        f"{point['simulated_power']:.3f}",
                        f"{point['predicted_power']:.3f}",
                        f"{100 * point['relative_error']:+.1f}%",
                    )
                )
    result.tables.append(
        TableData(
            title="model vs simulation",
            headers=(
                "workload", "protocol", "cache", "cpus",
                "sim power", "model power", "error",
            ),
            rows=tuple(rows),
        )
    )
    result.add_check(
        "model-tracks-simulation",
        worst <= error_budget,
        f"worst relative error {100 * worst:.1f}% "
        f"(budget {100 * error_budget:.0f}%)",
    )
    if failures:
        result.add_check(
            "sweep-cells-complete",
            False,
            f"{len(failures)}/{len(cells)} cells failed: "
            + "; ".join(str(failure) for failure in failures),
        )
    return result


def _series_tag(
    workload: str,
    protocol: str,
    cache_bytes: int,
    show_workload: bool,
    show_protocol: bool,
    show_cache: bool,
) -> str:
    parts = []
    if show_workload:
        parts.append(workload)
    if show_protocol:
        parts.append(protocol)
    if show_cache:
        parts.append(f"{cache_bytes // 1024}K")
    return " ".join(parts)


@register(
    "figure1",
    "Model vs simulation: Base and Dragon, 64K caches",
    "Figure 1",
)
def figure1(
    fast: bool = False, jobs: int | None = None, **_
) -> ExperimentResult:
    result = model_vs_simulation(
        "figure1",
        "Model vs simulation, Base and Dragon schemes, 64K-byte caches",
        workloads=("pops", "thor", "pero"),
        protocols=("base", "dragon"),
        cache_sizes=(65536,),
        cpu_counts=(1, 2, 3, 4),
        records_per_cpu=_FAST_RECORDS if fast else None,
        jobs=jobs,
    )
    # The model must capture the (small) Base-over-Dragon advantage.
    for workload in ("pops", "thor", "pero"):
        sim_gap = (
            result.series_by_label(f"sim {workload} base").y_at(4)
            - result.series_by_label(f"sim {workload} dragon").y_at(4)
        )
        model_gap = (
            result.series_by_label(f"model {workload} base").y_at(4)
            - result.series_by_label(f"model {workload} dragon").y_at(4)
        )
        result.add_check(
            f"relative-difference-captured-{workload}",
            sim_gap >= 0.0 and model_gap >= 0.0,
            f"{workload}: Base-Dragon gap sim {sim_gap:+.3f}, "
            f"model {model_gap:+.3f}",
        )
    return result


@register(
    "figure2",
    "Model vs simulation: Dragon at three cache sizes, <=4 CPUs",
    "Figure 2",
)
def figure2(
    fast: bool = False, jobs: int | None = None, **_
) -> ExperimentResult:
    result = model_vs_simulation(
        "figure2",
        "Impact of cache size on Dragon, four or fewer processors (pops)",
        workloads=("pops",),
        protocols=("dragon",),
        cache_sizes=(16384, 65536, 262144),
        cpu_counts=(1, 2, 3, 4),
        records_per_cpu=_FAST_RECORDS if fast else None,
        jobs=jobs,
    )
    small = result.series_by_label("sim 16K").y_at(4)
    large = result.series_by_label("sim 256K").y_at(4)
    result.add_check(
        "bigger-caches-help",
        large > small,
        f"power at n=4: 16K {small:.3f} < 256K {large:.3f}",
    )
    return result


@register(
    "figure3",
    "Model vs simulation: Dragon at three cache sizes, <=8 CPUs",
    "Figure 3",
)
def figure3(
    fast: bool = False, jobs: int | None = None, **_
) -> ExperimentResult:
    result = model_vs_simulation(
        "figure3",
        "Impact of cache size on Dragon, eight or fewer processors (pero8)",
        workloads=("pero8",),
        protocols=("dragon",),
        cache_sizes=(16384, 65536, 262144),
        cpu_counts=(1, 2, 4, 8),
        records_per_cpu=_FAST_RECORDS if fast else None,
        jobs=jobs,
        # At 8 processors the synthetic traces' burstiness (broadcast
        # trains inside critical sections, miss clusters) costs more
        # contention than the model's Poisson-arrival assumption sees;
        # the paper's own 8-CPU plot shows gaps of similar magnitude,
        # though with the opposite sign (its exponential-service bus
        # model overestimates contention on the ATUM traces).
        error_budget=0.20,
    )
    result.notes.append(
        "Model-simulation divergence grows with processor count because "
        "the trace's bus requests are burstier than the contention "
        "model's arrival assumption; see EXPERIMENTS.md."
    )
    small = result.series_by_label("sim 16K").y_at(8)
    large = result.series_by_label("sim 256K").y_at(8)
    result.add_check(
        "bigger-caches-help",
        large > small,
        f"power at n=8: 16K {small:.3f} < 256K {large:.3f}",
    )
    return result
