"""Extension: cache block size, simulated end to end.

The model holds miss rates constant by design; the simulator lets
block size act on both miss rates and transfer costs.
"""

from benchmarks.conftest import run_and_report


def test_extension_block_size(benchmark):
    run_and_report(benchmark, "extension-block-size", fast=True)
