"""Figure 10: buses versus networks.

    The network overtakes the bus where the bus saturates; both
    software schemes scale on the network; Software-Flush stays more
    efficient than No-Cache under circuit switching.
"""

from benchmarks.conftest import run_and_report


def test_fig10(benchmark):
    run_and_report(benchmark, "figure10")
