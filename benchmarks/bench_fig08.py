"""Figure 8: power vs apl, low sharing.

    Steep at low apl, plateau reached early.
"""

from benchmarks.conftest import run_and_report


def test_fig08(benchmark):
    run_and_report(benchmark, "figure8")
