"""Extension: Software-Flush (low range) vs a full-map directory.

Makes the paper's Section 6.3 remark checkable: at the low parameter
range the two schemes' network processing powers agree within 10%.
"""

from benchmarks.conftest import run_and_report


def test_extension_directory(benchmark):
    run_and_report(benchmark, "extension-directory-vs-flush")
