"""Ablation: replay-order distortion.

    Extension quantifying the Section 3 reference-order distortion.
"""

from benchmarks.conftest import run_and_report


def test_ablation_order(benchmark):
    run_and_report(benchmark, "ablation-replay-order", fast=True)
