"""Epoch-partitioned Dragon/WTI families and the segment-scan engine.

The epoch engine extends sweep-scale simulation to the geometry-coupled
snoopy protocols: one :func:`repro.sim.run_geometry_family` call per
protocol replaces one full trace replay per cache size, with per-config
statistics bit-identical to ``Machine.run``.  The pytest-benchmark
entries here track the eight-size family for both protocols;
``test_dragon_family_speedup`` / ``test_wti_family_speedup`` record the
measured ratios (``extra_info["speedup"]``) and enforce the 2x
wall-clock floor.  ``test_segment_speedup`` records the segment-scan
replay engine's single-config speedup over the columnar loop.

The module also runs standalone for CI::

    python benchmarks/bench_coupled.py --smoke

which checks family-vs-per-config bit-exactness for Dragon and WTI on
a reduced trace, then times the benchmark families against a
noise-tolerant smoke floor — seconds, not minutes, suitable for
``scripts/check.sh``.
"""

from __future__ import annotations

import sys
import time

from repro.sim import Machine, SimulationConfig, run_geometry_family
from repro.trace import preset
from repro.verify.differential import stats_signature

#: Sweep-scale benchmark family: the paper's 16K-256K validation axis
#: extended down to 2K — eight cache sizes, one 160k-record trace.
_BENCH_PROTOCOLS = ("dragon", "wti")
_BENCH_SIZES = tuple(2048 << k for k in range(8))
_BENCH_RECORDS = 40_000

#: Small smoke family for the exactness check, < 10 s total.
_SMOKE_SIZES = (4096, 16384, 65536, 262144)
_SMOKE_RECORDS = 10_000

_ROUNDS = 5
#: The recorded claim, enforced by the pytest-benchmark entries.
_WALL_FLOOR = 2.0
#: Noise-tolerant CI tripwire (same pattern as bench_onepass: the
#: smoke floor sits below the benchmarked claim so a loaded box does
#: not flake the gate, while a real regression still trips it).
_SMOKE_WALL_FLOOR = 1.6
_SEGMENT_FLOOR = 1.1
_SEGMENT_PROTOCOL = "base"


def _trace(records: int):
    return preset("pops").generate(records_per_cpu=records)


def _per_config_sweep(protocol, trace, sizes) -> dict:
    """The reference path: one full ``Machine.run`` per cache size."""
    results = {}
    for size in sizes:
        config = SimulationConfig(cache_bytes=size)
        results[size] = Machine(protocol, config).run(trace)
    return results


def _identical(family: dict, reference: dict) -> bool:
    return all(
        stats_signature(family[size]) == stats_signature(reference[size])
        for size in reference
    )


def _min_seconds(fn, rounds: int = _ROUNDS) -> float:
    """Min wall time over ``rounds`` calls — the noise-robust statistic
    pytest-benchmark itself reports for the fast side."""
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _paired_min_seconds(fast, slow, rounds: int = _ROUNDS):
    """Min wall time for both sides, measured in *alternating* rounds
    so slow drift in machine load hits both paths, not just one."""
    best_fast = best_slow = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fast()
        best_fast = min(best_fast, time.perf_counter() - start)
        start = time.perf_counter()
        slow()
        best_slow = min(best_slow, time.perf_counter() - start)
    return best_fast, best_slow


def _family_speedup(benchmark, protocol: str) -> None:
    trace = _trace(_BENCH_RECORDS)
    reference = _per_config_sweep(protocol, trace, _BENCH_SIZES)
    per_config_seconds = _min_seconds(
        lambda: _per_config_sweep(protocol, trace, _BENCH_SIZES)
    )
    family = benchmark(
        lambda: run_geometry_family(protocol, trace, _BENCH_SIZES)
    )
    family_seconds = benchmark.stats.stats.min

    assert _identical(family, reference)
    # WTI's default merge is tiered: the saturated pops trace keeps it
    # on the folded "epoch" tier, but the scan tier is equally valid.
    assert all(
        run.engine in ("epoch", "epoch-scan") for run in family.values()
    )
    speedup = per_config_seconds / family_seconds
    benchmark.extra_info["per_config_seconds"] = per_config_seconds
    benchmark.extra_info["family_seconds"] = family_seconds
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["cache_sizes"] = len(_BENCH_SIZES)
    benchmark.extra_info["records"] = len(trace)
    assert speedup >= _WALL_FLOOR, (
        f"{protocol} family only {speedup:.2f}x faster than per-config "
        f"({per_config_seconds:.3f}s vs {family_seconds:.3f}s)"
    )


# -- pytest-benchmark entries -------------------------------------------


def test_dragon_family_speedup(benchmark):
    """Record and enforce the >= 2x Dragon eight-size sweep speedup."""
    _family_speedup(benchmark, "dragon")


def test_wti_family_speedup(benchmark):
    """Record and enforce the >= 2x WTI eight-size sweep speedup."""
    _family_speedup(benchmark, "wti")


def test_segment_speedup(benchmark):
    """Record the segment-scan engine's speedup over the columnar loop."""
    trace = _trace(_BENCH_RECORDS)
    machine = Machine(_SEGMENT_PROTOCOL, SimulationConfig())
    columnar = machine.run(trace, engine="columnar")
    columnar_seconds = _min_seconds(
        lambda: machine.run(trace, engine="columnar")
    )
    segment = benchmark(lambda: machine.run(trace, engine="segment"))
    segment_seconds = benchmark.stats.stats.min

    assert segment.engine == "segment"
    assert stats_signature(segment) == stats_signature(columnar)
    speedup = columnar_seconds / segment_seconds
    benchmark.extra_info["columnar_seconds"] = columnar_seconds
    benchmark.extra_info["segment_seconds"] = segment_seconds
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["records"] = len(trace)
    assert speedup >= _SEGMENT_FLOOR, (
        f"segment engine only {speedup:.2f}x faster than columnar "
        f"({columnar_seconds:.3f}s vs {segment_seconds:.3f}s)"
    )


# -- standalone smoke mode ----------------------------------------------


def run_smoke() -> int:
    """Bit-exactness for Dragon/WTI + the 2x timing floor; 0 if ok."""
    trace = _trace(_SMOKE_RECORDS)
    failures = 0
    for protocol in _BENCH_PROTOCOLS:
        family = run_geometry_family(protocol, trace, _SMOKE_SIZES)
        reference = _per_config_sweep(protocol, trace, _SMOKE_SIZES)
        if not _identical(family, reference):
            print(f"MISMATCH epoch/{protocol}", file=sys.stderr)
            failures += 1
        if any(
            run.engine not in ("epoch", "epoch-scan")
            for run in family.values()
        ):
            print(f"FAST PATH NOT USED for {protocol}", file=sys.stderr)
            failures += 1
    machine = Machine(_SEGMENT_PROTOCOL, SimulationConfig())
    if stats_signature(machine.run(trace, engine="segment")) != (
        stats_signature(machine.run(trace, engine="columnar"))
    ):
        print("MISMATCH segment engine", file=sys.stderr)
        failures += 1
    if failures:
        return 1

    bench_trace = _trace(_BENCH_RECORDS)
    status = 0
    for protocol in _BENCH_PROTOCOLS:
        run_geometry_family(protocol, bench_trace, _BENCH_SIZES)  # warm
        family_seconds, per_config_seconds = _paired_min_seconds(
            lambda: run_geometry_family(protocol, bench_trace, _BENCH_SIZES),
            lambda: _per_config_sweep(protocol, bench_trace, _BENCH_SIZES),
            rounds=5,
        )
        speedup = per_config_seconds / family_seconds
        print(
            f"{protocol} smoke ok: {len(_BENCH_SIZES)} sizes x "
            f"{len(bench_trace)} records, per-config "
            f"{per_config_seconds:.3f}s, family {family_seconds:.3f}s "
            f"({speedup:.1f}x)"
        )
        if speedup < _SMOKE_WALL_FLOOR:
            print(
                f"{protocol} speedup {speedup:.2f}x below the "
                f"{_SMOKE_WALL_FLOOR:.1f}x smoke floor",
                file=sys.stderr,
            )
            status = 1
    return status


if __name__ == "__main__":
    if "--smoke" in sys.argv[1:]:
        raise SystemExit(run_smoke())
    print(__doc__)
    raise SystemExit(
        "run under pytest (--benchmark-only) or with --smoke"
    )
