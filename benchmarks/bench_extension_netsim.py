"""Extension: validate Patel's network model by flit-level simulation.

Provides the validation the paper notes is missing for its Section 6
network model.
"""

from benchmarks.conftest import run_and_report


def test_extension_network_validation(benchmark):
    run_and_report(benchmark, "extension-network-validation", fast=True)
