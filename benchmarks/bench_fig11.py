"""Figure 11: 256-processor network utilisation map.

    Utilisation vs unit-request rate for message sizes 1-16 words plus
    the nine B/S/N x l/m/h scheme points; checks the halved-at-60%%
    claim and the two performance classes.
"""

from benchmarks.conftest import run_and_report


def test_fig11(benchmark):
    run_and_report(benchmark, "figure11")
