"""Table 8: sensitivity analysis.

    Varies each workload parameter low-to-high (others at middle) at 16
    processors and reports the percent change in execution time.
    Checks the prose ordering: apl >> shd > ls > miss rate for
    Software-Flush; miss rate dominant for Dragon; wr second-order.
"""

from benchmarks.conftest import run_and_report


def test_table08(benchmark):
    run_and_report(benchmark, "table8")
