"""Figure 1: model vs simulation, Base and Dragon at 64K.

    Trace-driven validation on the three ATUM-like workloads at 1-4
    processors; the model must track the simulator within 10% and
    capture the Base-over-Dragon gap.
"""

from benchmarks.conftest import run_and_report


def test_fig01(benchmark):
    run_and_report(benchmark, "figure1", fast=True)
