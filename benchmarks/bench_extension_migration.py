"""Extension: the cost of process migration.

The paper's traces contain none; this quantifies what that omission
hides (cold-cache refills after every migration).
"""

from benchmarks.conftest import run_and_report


def test_extension_migration(benchmark):
    run_and_report(benchmark, "extension-migration", fast=True)
