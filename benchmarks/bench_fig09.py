"""Figure 9: power vs apl, middle sharing.

    Still sensitive to apl at high values.
"""

from benchmarks.conftest import run_and_report


def test_fig09(benchmark):
    run_and_report(benchmark, "figure9")
