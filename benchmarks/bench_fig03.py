"""Figure 3: Dragon across cache sizes, <=8 CPUs.

    The 8-processor pero-like trace; the error budget is 20% here (see
    EXPERIMENTS.md on burstiness).
"""

from benchmarks.conftest import run_and_report


def test_fig03(benchmark):
    run_and_report(benchmark, "figure3", fast=True)
