"""Bus arbitration disciplines: exactness + overhead micro-benchmark.

The arbitrated engine replays the trace through the deferred-grant
:class:`~repro.sim.bus.ArbitratedBus` so non-FCFS disciplines can
reorder grants; that generality costs wall clock over the synchronous
columnar fold.  The pytest-benchmark entries here record the per-
discipline replay times and the pure bus request/grant throughput, and
``test_arbitrated_overhead_ceiling`` pins the price: the fcfs
arbitrated replay must stay within ``_OVERHEAD_CEILING``x of the
columnar engine, so the deferred-grant heap never quietly decays into
something pathological.

fcfs with an *integral* arbitration overhead no longer pays that
price at all: the overhead folds into the synchronous engines' grant
arithmetic (``engine="columnar+arb"``), and
``test_folded_arbitration_overhead`` pins the fold at parity —
within ``_FOLDED_CEILING``x of the zero-overhead columnar replay
(measured ~1.0x, vs the ~9.4x the deferred-grant engine used to
charge the default discipline).

The module also runs standalone for CI::

    python benchmarks/bench_bus.py --smoke

which checks fcfs bit-exactness (arbitrated vs columnar) plus the
oracle invariants for every registered discipline on a reduced trace,
then times the fcfs replay against a noise-tolerant smoke ceiling —
seconds, not minutes, suitable for ``scripts/check.sh``.
"""

from __future__ import annotations

import dataclasses
import sys
import time

from repro.sim import Machine, SimulationConfig
from repro.sim.bus import DISCIPLINES, ArbitratedBus
from repro.trace import preset
from repro.verify.differential import stats_signature
from repro.verify.invariants import check_result_invariants

#: Discipline replay entries run the geometry-coupled Dragon protocol
#: (the expensive, representative case); the bit-exactness claim is
#: made on a geometry-local protocol, where fcfs arbitration is
#: guaranteed byte-identical (coupled protocols may legally reorder
#: same-cycle steals).
_BENCH_PROTOCOL = "dragon"
_EXACT_PROTOCOL = "swflush"
_BENCH_RECORDS = 40_000
_SMOKE_RECORDS = 10_000
_ARBITRATION_CYCLES = 2.0

_ROUNDS = 5
#: The recorded claim, enforced by the pytest-benchmark entry: the
#: deferred-grant replay pays at most this factor over the columnar
#: fold (measured ~10x; the headroom absorbs machine noise, not drift).
_OVERHEAD_CEILING = 13.0
#: Noise-tolerant CI tripwire (same pattern as bench_coupled: the
#: smoke bound sits looser than the benchmarked claim so a loaded box
#: does not flake the gate, while a real regression still trips it).
_SMOKE_OVERHEAD_CEILING = 16.0

#: The folded fcfs path: integral overhead added inside the synchronous
#: grant arithmetic costs a constant per transaction, so the fold must
#: stay at parity with the zero-overhead columnar replay (measured
#: ~1.0x; the ceiling is the recorded claim, not headroom for drift).
_FOLDED_ARBITRATION_CYCLES = 4.0
_FOLDED_CEILING = 1.5

#: Pure-bus micro: requests posted and granted per arbitration cycle.
_GRANT_CPUS = 16
_GRANT_ROUNDS = 2_000


def _trace(records: int):
    return preset("pops").generate(records_per_cpu=records)


def _discipline_config(discipline: str) -> SimulationConfig:
    return dataclasses.replace(
        SimulationConfig(),
        bus_discipline=discipline,
        bus_arbitration_cycles=_ARBITRATION_CYCLES,
    )


def _min_seconds(fn, rounds: int = _ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _paired_min_seconds(fast, slow, rounds: int = _ROUNDS):
    """Min wall time for both sides, measured in *alternating* rounds
    so slow drift in machine load hits both paths, not just one."""
    best_fast = best_slow = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fast()
        best_fast = min(best_fast, time.perf_counter() - start)
        start = time.perf_counter()
        slow()
        best_slow = min(best_slow, time.perf_counter() - start)
    return best_fast, best_slow


def _grant_storm(discipline: str) -> float:
    """Saturate one bus: every CPU re-requests as soon as it is served."""
    bus = ArbitratedBus(
        _GRANT_CPUS, discipline, arbitration_cycles=_ARBITRATION_CYCLES
    )
    for cpu in range(_GRANT_CPUS):
        bus.request(cpu, 0.0, 4.0)
    for _ in range(_GRANT_ROUNDS):
        cpu, start, _ = bus.grant_next()
        bus.request(cpu, start + 4.0, 4.0)
    return bus.busy_cycles


# -- pytest-benchmark entries -------------------------------------------


def test_arbitrated_overhead_ceiling(benchmark):
    """Record and bound the fcfs arbitrated replay's columnar overhead."""
    trace = _trace(_BENCH_RECORDS)
    machine = Machine(_EXACT_PROTOCOL, SimulationConfig())
    columnar = machine.run(trace, engine="columnar")
    columnar_seconds = _min_seconds(
        lambda: machine.run(trace, engine="columnar")
    )
    arbitrated = benchmark(lambda: machine.run(trace, engine="arbitrated"))
    arbitrated_seconds = benchmark.stats.stats.min

    assert arbitrated.engine == "arbitrated"
    assert stats_signature(arbitrated) == stats_signature(columnar)
    overhead = arbitrated_seconds / columnar_seconds
    benchmark.extra_info["columnar_seconds"] = columnar_seconds
    benchmark.extra_info["arbitrated_seconds"] = arbitrated_seconds
    benchmark.extra_info["overhead"] = overhead
    benchmark.extra_info["records"] = len(trace)
    assert overhead <= _OVERHEAD_CEILING, (
        f"arbitrated replay {overhead:.2f}x over columnar "
        f"({arbitrated_seconds:.3f}s vs {columnar_seconds:.3f}s) "
        f"exceeds the {_OVERHEAD_CEILING:.0f}x ceiling"
    )


def test_folded_arbitration_overhead(benchmark):
    """Record and bound the folded fcfs overhead vs zero-overhead
    columnar."""
    trace = _trace(_BENCH_RECORDS)
    plain = Machine(_EXACT_PROTOCOL, SimulationConfig())
    folded_config = dataclasses.replace(
        SimulationConfig(),
        bus_arbitration_cycles=_FOLDED_ARBITRATION_CYCLES,
    )
    machine = Machine(_EXACT_PROTOCOL, folded_config)
    reference = machine.run(trace, engine="arbitrated")
    columnar_seconds = _min_seconds(
        lambda: plain.run(trace, engine="columnar")
    )
    folded = benchmark(lambda: machine.run(trace))
    folded_seconds = benchmark.stats.stats.min

    assert folded.engine == "columnar+arb"
    assert stats_signature(folded) == stats_signature(reference)
    overhead = folded_seconds / columnar_seconds
    benchmark.extra_info["columnar_seconds"] = columnar_seconds
    benchmark.extra_info["folded_seconds"] = folded_seconds
    benchmark.extra_info["overhead"] = overhead
    benchmark.extra_info["arbitration_cycles"] = (
        _FOLDED_ARBITRATION_CYCLES
    )
    benchmark.extra_info["records"] = len(trace)
    assert overhead <= _FOLDED_CEILING, (
        f"folded fcfs replay {overhead:.2f}x over zero-overhead "
        f"columnar ({folded_seconds:.3f}s vs {columnar_seconds:.3f}s) "
        f"exceeds the {_FOLDED_CEILING:.1f}x ceiling"
    )


def test_discipline_replay(benchmark, discipline):
    """Record per-discipline replay time with arbitration overhead on."""
    trace = _trace(_BENCH_RECORDS)
    machine = Machine(_BENCH_PROTOCOL, _discipline_config(discipline))
    run = benchmark(lambda: machine.run(trace))
    check_result_invariants(run, trace=trace)
    benchmark.extra_info["discipline"] = discipline
    benchmark.extra_info["engine"] = run.engine
    benchmark.extra_info["records"] = len(trace)


def pytest_generate_tests(metafunc):
    if "discipline" in metafunc.fixturenames:
        metafunc.parametrize("discipline", DISCIPLINES)


def test_grant_throughput(benchmark):
    """Record the pure request/grant loop on a saturated 16-CPU bus."""
    busy = benchmark(lambda: _grant_storm("round-robin"))
    assert busy > 0.0
    benchmark.extra_info["grants"] = _GRANT_ROUNDS
    benchmark.extra_info["cpus"] = _GRANT_CPUS


# -- standalone smoke mode ----------------------------------------------


def run_smoke() -> int:
    """fcfs bit-exactness (plain and folded) + per-discipline
    invariants + the overhead and fold ceilings; 0 if ok."""
    trace = _trace(_SMOKE_RECORDS)
    failures = 0
    machine = Machine(_EXACT_PROTOCOL, SimulationConfig())
    columnar = machine.run(trace, engine="columnar")
    arbitrated = machine.run(trace, engine="arbitrated")
    if stats_signature(arbitrated) != stats_signature(columnar):
        print("MISMATCH fcfs arbitrated vs columnar", file=sys.stderr)
        failures += 1
    folded_config = dataclasses.replace(
        SimulationConfig(),
        bus_arbitration_cycles=_FOLDED_ARBITRATION_CYCLES,
    )
    folded_machine = Machine(_EXACT_PROTOCOL, folded_config)
    folded = folded_machine.run(trace)
    if folded.engine != "columnar+arb":
        print(
            f"FOLD NOT USED for integral fcfs overhead "
            f"(engine={folded.engine})",
            file=sys.stderr,
        )
        failures += 1
    if stats_signature(folded) != stats_signature(
        folded_machine.run(trace, engine="arbitrated")
    ):
        print("MISMATCH folded fcfs vs arbitrated", file=sys.stderr)
        failures += 1
    for discipline in DISCIPLINES:
        run = Machine(
            _BENCH_PROTOCOL, _discipline_config(discipline)
        ).run(trace)
        try:
            check_result_invariants(run, trace=trace)
        except Exception as violation:
            print(
                f"INVARIANT VIOLATION under {discipline}: {violation}",
                file=sys.stderr,
            )
            failures += 1
    if failures:
        return 1

    bench_trace = _trace(_BENCH_RECORDS)
    machine = Machine(_EXACT_PROTOCOL, SimulationConfig())
    machine.run(bench_trace, engine="arbitrated")  # warm
    arbitrated_seconds, columnar_seconds = _paired_min_seconds(
        lambda: machine.run(bench_trace, engine="arbitrated"),
        lambda: machine.run(bench_trace, engine="columnar"),
        rounds=5,
    )
    overhead = arbitrated_seconds / columnar_seconds
    folded_machine = Machine(
        _EXACT_PROTOCOL,
        dataclasses.replace(
            SimulationConfig(),
            bus_arbitration_cycles=_FOLDED_ARBITRATION_CYCLES,
        ),
    )
    folded_machine.run(bench_trace)  # warm
    folded_seconds, plain_seconds = _paired_min_seconds(
        lambda: folded_machine.run(bench_trace),
        lambda: machine.run(bench_trace, engine="columnar"),
        rounds=5,
    )
    fold_overhead = folded_seconds / plain_seconds
    print(
        f"bus smoke ok: {len(DISCIPLINES)} disciplines x "
        f"{len(bench_trace)} records, columnar {columnar_seconds:.3f}s, "
        f"arbitrated {arbitrated_seconds:.3f}s ({overhead:.1f}x), "
        f"folded fcfs overhead {fold_overhead:.2f}x"
    )
    if overhead > _SMOKE_OVERHEAD_CEILING:
        print(
            f"arbitrated overhead {overhead:.2f}x above the "
            f"{_SMOKE_OVERHEAD_CEILING:.1f}x smoke ceiling",
            file=sys.stderr,
        )
        return 1
    if fold_overhead > _FOLDED_CEILING:
        print(
            f"folded fcfs overhead {fold_overhead:.2f}x above the "
            f"{_FOLDED_CEILING:.1f}x ceiling",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    if "--smoke" in sys.argv[1:]:
        raise SystemExit(run_smoke())
    print(__doc__)
    raise SystemExit(
        "run under pytest (--benchmark-only) or with --smoke"
    )
