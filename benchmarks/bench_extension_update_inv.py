"""Extension: write-update (Dragon) vs write-invalidate (directory).

Runs both engines on identical traces and checks the mechanism-level
facts (invalidation adds misses; powers stay comparable here).
"""

from benchmarks.conftest import run_and_report


def test_extension_update_vs_invalidate(benchmark):
    run_and_report(benchmark, "extension-update-vs-invalidate", fast=True)
