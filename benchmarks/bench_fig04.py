"""Figure 4: schemes at low sharing.

    Processing power vs processors, ls/shd low: all schemes close to
    ideal; No-Cache viable.
"""

from benchmarks.conftest import run_and_report


def test_fig04(benchmark):
    run_and_report(benchmark, "figure4")
