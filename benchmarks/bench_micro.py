"""Micro-benchmarks of the substrates.

Not paper artefacts: these track the cost of the building blocks so
performance regressions in the solvers, the generator, or the
simulator surface in benchmark history.
"""

import pytest

from repro.core import ALL_SCHEMES, BusSystem, NetworkSystem, WorkloadParams
from repro.queueing import DeltaNetwork, closed_loop_utilization, solve_machine_repairman
from repro.sim import Machine, SimulationConfig
from repro.trace import TraceConfig, generate_trace

MIDDLE = WorkloadParams.middle()


def test_mva_solver(benchmark):
    benchmark(solve_machine_repairman, 64, 20.0, 1.5)


def test_delta_fixed_point(benchmark):
    network = DeltaNetwork(stages=10)
    benchmark(closed_loop_utilization, network, 0.6)


def test_bus_evaluation_all_schemes(benchmark):
    bus = BusSystem()

    def evaluate_all():
        for scheme in ALL_SCHEMES:
            bus.evaluate(scheme, MIDDLE, processors=16)

    benchmark(evaluate_all)


def test_network_evaluation(benchmark):
    network = NetworkSystem(8)
    from repro.core import SOFTWARE_FLUSH

    benchmark(network.evaluate, SOFTWARE_FLUSH, MIDDLE)


@pytest.fixture(scope="module")
def small_trace():
    return generate_trace(TraceConfig(cpus=4, records_per_cpu=10_000, seed=1))


def test_trace_generation(benchmark):
    config = TraceConfig(cpus=4, records_per_cpu=5_000, seed=1)
    benchmark.pedantic(generate_trace, args=(config,), rounds=3, iterations=1)


@pytest.mark.parametrize("protocol", ["base", "dragon", "nocache", "swflush"])
def test_simulator_throughput(benchmark, small_trace, protocol):
    machine = Machine(protocol, SimulationConfig())
    result = benchmark.pedantic(
        machine.run, args=(small_trace,), rounds=3, iterations=1
    )
    assert result.instructions > 0
