"""Micro-benchmarks of the substrates.

Not paper artefacts: these track the cost of the building blocks so
performance regressions in the solvers, the generator, or the
simulator surface in benchmark history.
"""

import pytest

from repro.core import ALL_SCHEMES, BusSystem, NetworkSystem, WorkloadParams
from repro.queueing import DeltaNetwork, closed_loop_utilization, solve_machine_repairman
from repro.sim import Machine, SimulationConfig
from repro.trace import TraceConfig, generate_trace, load_trace, save_trace

MIDDLE = WorkloadParams.middle()


def test_mva_solver(benchmark):
    benchmark(solve_machine_repairman, 64, 20.0, 1.5)


def test_delta_fixed_point(benchmark):
    network = DeltaNetwork(stages=10)
    benchmark(closed_loop_utilization, network, 0.6)


def test_bus_evaluation_all_schemes(benchmark):
    bus = BusSystem()

    def evaluate_all():
        for scheme in ALL_SCHEMES:
            bus.evaluate(scheme, MIDDLE, processors=16)

    benchmark(evaluate_all)


def test_network_evaluation(benchmark):
    network = NetworkSystem(8)
    from repro.core import SOFTWARE_FLUSH

    benchmark(network.evaluate, SOFTWARE_FLUSH, MIDDLE)


@pytest.fixture(scope="module")
def small_trace():
    return generate_trace(TraceConfig(cpus=4, records_per_cpu=10_000, seed=1))


def test_trace_generation(benchmark):
    config = TraceConfig(cpus=4, records_per_cpu=5_000, seed=1)
    benchmark.pedantic(generate_trace, args=(config,), rounds=3, iterations=1)


@pytest.mark.parametrize(
    "protocol", ["base", "dragon", "hybrid-4", "nocache", "swflush"]
)
def test_simulator_throughput(benchmark, small_trace, protocol):
    machine = Machine(protocol, SimulationConfig())
    result = benchmark.pedantic(
        machine.run, args=(small_trace,), rounds=3, iterations=1
    )
    assert result.instructions > 0


@pytest.mark.parametrize("protocol", ["base", "dragon"])
def test_simulator_trace_order(benchmark, small_trace, protocol):
    """Trace-order replay (no time merge): the engine's upper bound."""
    machine = Machine(protocol, SimulationConfig())
    result = benchmark.pedantic(
        machine.run, args=(small_trace,), kwargs={"order": "trace"},
        rounds=3, iterations=1,
    )
    assert result.instructions > 0


@pytest.mark.parametrize("protocol", ["base", "dragon"])
def test_simulator_legacy_reference(benchmark, small_trace, protocol):
    """The retained record-loop engine, so the history shows both."""
    machine = Machine(protocol, SimulationConfig())
    result = benchmark.pedantic(
        machine.run, args=(small_trace,), kwargs={"engine": "legacy"},
        rounds=3, iterations=1,
    )
    assert result.instructions > 0


@pytest.mark.parametrize("format", ["v1", "v2"])
def test_trace_save(benchmark, small_trace, tmp_path, format):
    path = tmp_path / f"bench.{format}"
    benchmark.pedantic(
        save_trace, args=(small_trace, path), kwargs={"format": format},
        rounds=3, iterations=1,
    )


@pytest.mark.parametrize("format", ["v1", "v2"])
def test_trace_load(benchmark, small_trace, tmp_path, format):
    path = tmp_path / f"bench.{format}"
    save_trace(small_trace, path, format=format)
    loaded = benchmark.pedantic(
        load_trace, args=(path,), rounds=3, iterations=1
    )
    assert len(loaded) == len(small_trace)
