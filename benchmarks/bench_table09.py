"""Table 9: network system model.

    Rebuilds the n-stage network timing table and checks the published
    6+2n / 9+2n / ... formulas.
"""

from benchmarks.conftest import run_and_report


def test_table09(benchmark):
    run_and_report(benchmark, "table9")
