"""WTI scan-era merge tiers: exactness + sweep micro-benchmark.

``wti_merge="auto"`` (the default) replaced the PR 6 inlined reference
loop with a two-tier merge: a bounded-fixpoint lexsort scan
(``engine="epoch-scan"``) when the a-priori bus-demand estimate says
the wait cascades are short, and a folded single-unpack loop
(``engine="epoch"``) everywhere else.  Both tiers are byte-identical
to the retained ``wti_merge="loop"`` reference; this module pins the
wall-clock side of that bargain.

Honest numbers, recorded as measured: on the saturated ``pops``
benchmark trace the scan gate refuses (bus utilization 0.55-0.89
across the eight-size sweep, far above the 0.15 demand gate), so the
sweep-scale win is entirely the folded tier's — measured ~1.1-1.15x
over the reference loop with both sides timed gc-disabled (the benchmark
disables the collector around *both* measurements; an asymmetric
protocol flatters the ratio to ~1.6x because collection passes hit
the loop's per-event tuples harder than the folded path).  That is
NOT the 1.4x the scan formulation aimed for: the residual per-event
cost is Python dispatch, not merge arithmetic.  The fixpoint scan
cannot close the gap on this trace either: its pass count tracks the
bus-conflict count (each lexsort pass resolves one wait-dependency
hop), so it converges only on near-idle buses — and in write-through
WTI, write sharing *is* bus traffic.  The scan tier therefore pays
off only on quiet traces, where ``test_scan_engagement`` pins that
it actually engages and stays exact.

The module also runs standalone for CI::

    python benchmarks/bench_scan_merge.py --smoke

which checks auto-vs-loop bit-exactness on a reduced sweep plus the
quiet-trace scan engagement, then times the benchmark sweep against a
noise-tolerant smoke floor — seconds, not minutes, suitable for
``scripts/check.sh``.
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.sim import run_geometry_family
from repro.trace import preset
from repro.trace.records import Trace
from repro.verify.differential import stats_signature

#: The paper's direct-mapped sweep: eight cache sizes, one trace, WTI.
_BENCH_SIZES = tuple(2048 << k for k in range(8))
_BENCH_RECORDS = 40_000
_ASSOCIATIVITY = 1

_SMOKE_SIZES = (4096, 16384, 65536, 262144)
_SMOKE_RECORDS = 10_000

_ROUNDS = 5
#: The recorded claim, enforced by the pytest-benchmark entry: the
#: default (tiered) merge beats the retained reference loop on the
#: eight-size sweep.  Measured ~1.1-1.15x with both sides gc-disabled;
#: the floor sits below that so a loaded box does not flake, while a
#: real regression — the folded merge decaying back to per-event
#: tuple unpacking — still trips it.
_SWEEP_FLOOR = 1.08
#: Noise-tolerant CI tripwire (the smoke also times gc-disabled).
_SMOKE_SWEEP_FLOOR = 1.05

#: Quiet-trace shape for the scan-engagement pin: two CPUs looping
#: over disjoint 4-block working sets, loads only.  Bus utilization
#: ~0.05, comfortably under the scan's 0.15 demand gate.
_QUIET_RECORDS = 25_000


def _trace(records: int):
    return preset("pops").generate(records_per_cpu=records)


def _quiet_trace(records: int) -> Trace:
    cpu = np.tile([0, 1], records).astype(np.uint16)
    kind = np.zeros(2 * records, dtype=np.uint8)
    blocks = np.empty(2 * records, dtype=np.uint64)
    blocks[0::2] = np.arange(records) % 4
    blocks[1::2] = 8 + (np.arange(records) % 4)
    return Trace.from_arrays(
        name="quiet",
        cpus=2,
        shared_region=range(0, 0),
        cpu=cpu,
        kind=kind,
        address=blocks * 16,
    )


def _sweep(trace, sizes, merge: str) -> dict:
    return run_geometry_family(
        "wti",
        trace,
        sizes,
        associativity=_ASSOCIATIVITY,
        wti_merge=merge,
    )


def _identical(family: dict, reference: dict) -> bool:
    return all(
        stats_signature(family[size]) == stats_signature(reference[size])
        for size in reference
    )


def _min_seconds(fn, rounds: int = _ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _paired_min_seconds(fast, slow, rounds: int = _ROUNDS):
    """Min wall time for both sides, measured in *alternating* rounds
    so slow drift in machine load hits both paths, not just one."""
    best_fast = best_slow = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fast()
        best_fast = min(best_fast, time.perf_counter() - start)
        start = time.perf_counter()
        slow()
        best_slow = min(best_slow, time.perf_counter() - start)
    return best_fast, best_slow


# -- pytest-benchmark entries -------------------------------------------


def test_wti_merge_speedup(benchmark):
    """Record and bound the tiered default vs the reference loop."""
    import gc

    trace = _trace(_BENCH_RECORDS)
    reference = _sweep(trace, _BENCH_SIZES, "loop")
    # pytest-benchmark disables the collector only around the
    # benchmark() rounds; disable it here too so both sides of the
    # ratio run under the same protocol.
    collector_was_on = gc.isenabled()
    gc.disable()
    try:
        loop_seconds = _min_seconds(
            lambda: _sweep(trace, _BENCH_SIZES, "loop")
        )
    finally:
        if collector_was_on:
            gc.enable()
    family = benchmark(lambda: _sweep(trace, _BENCH_SIZES, "auto"))
    auto_seconds = benchmark.stats.stats.min

    assert _identical(family, reference)
    assert all(
        run.engine in ("epoch", "epoch-scan") for run in family.values()
    )
    speedup = loop_seconds / auto_seconds
    benchmark.extra_info["loop_seconds"] = loop_seconds
    benchmark.extra_info["auto_seconds"] = auto_seconds
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["cache_sizes"] = len(_BENCH_SIZES)
    benchmark.extra_info["records"] = len(trace)
    benchmark.extra_info["engines"] = sorted(
        {run.engine for run in family.values()}
    )
    assert speedup >= _SWEEP_FLOOR, (
        f"tiered wti merge only {speedup:.2f}x vs the reference loop "
        f"({loop_seconds:.3f}s vs {auto_seconds:.3f}s)"
    )


def test_scan_engagement(benchmark):
    """Pin that the scan tier engages (and stays exact) off-saturation."""
    trace = _quiet_trace(_QUIET_RECORDS)
    sizes = (1024, 4096)
    reference = _sweep(trace, sizes, "loop")
    family = benchmark(lambda: _sweep(trace, sizes, "auto"))

    assert all(run.engine == "epoch-scan" for run in family.values())
    assert _identical(family, reference)
    benchmark.extra_info["records"] = len(trace)
    benchmark.extra_info["engine"] = "epoch-scan"
    benchmark.extra_info["bus_utilization"] = max(
        run.bus_utilization for run in family.values()
    )


# -- standalone smoke mode ----------------------------------------------


def run_smoke() -> int:
    """auto-vs-loop bit-exactness + scan engagement + the sweep floor;
    0 if ok."""
    trace = _trace(_SMOKE_RECORDS)
    failures = 0
    family = _sweep(trace, _SMOKE_SIZES, "auto")
    reference = _sweep(trace, _SMOKE_SIZES, "loop")
    if not _identical(family, reference):
        print("MISMATCH wti auto vs loop", file=sys.stderr)
        failures += 1

    quiet = _quiet_trace(_SMOKE_RECORDS // 2)
    quiet_family = _sweep(quiet, (1024, 4096), "auto")
    if any(run.engine != "epoch-scan" for run in quiet_family.values()):
        print("SCAN TIER NOT ENGAGED on the quiet trace", file=sys.stderr)
        failures += 1
    if not _identical(quiet_family, _sweep(quiet, (1024, 4096), "loop")):
        print("MISMATCH epoch-scan vs loop", file=sys.stderr)
        failures += 1
    if failures:
        return 1

    bench_trace = _trace(_BENCH_RECORDS)
    _sweep(bench_trace, _BENCH_SIZES, "auto")  # warm
    # Time under the same protocol as the recorded baseline entries
    # (pytest-benchmark runs with --benchmark-disable-gc).
    import gc

    gc.disable()
    try:
        auto_seconds, loop_seconds = _paired_min_seconds(
            lambda: _sweep(bench_trace, _BENCH_SIZES, "auto"),
            lambda: _sweep(bench_trace, _BENCH_SIZES, "loop"),
            rounds=5,
        )
    finally:
        gc.enable()
    speedup = loop_seconds / auto_seconds
    print(
        f"scan-merge smoke ok: {len(_BENCH_SIZES)} sizes x "
        f"{len(bench_trace)} records, loop {loop_seconds:.3f}s, "
        f"auto {auto_seconds:.3f}s ({speedup:.2f}x); quiet trace "
        f"engages epoch-scan"
    )
    if speedup < _SMOKE_SWEEP_FLOOR:
        print(
            f"tiered merge speedup {speedup:.2f}x below the "
            f"{_SMOKE_SWEEP_FLOOR:.1f}x smoke floor",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    if "--smoke" in sys.argv[1:]:
        raise SystemExit(run_smoke())
    print(__doc__)
    raise SystemExit(
        "run under pytest (--benchmark-only) or with --smoke"
    )
