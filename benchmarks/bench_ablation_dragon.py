"""Ablation: Dragon's second-order model terms.

    Extension verifying the Section 2.2.4 remark that cache-supplied
    misses and cycle stealing barely matter.
"""

from benchmarks.conftest import run_and_report


def test_ablation_dragon(benchmark):
    run_and_report(benchmark, "ablation-dragon-small-terms")
