"""Ablation: packet switching favours No-Cache.

    Extension quantifying the paper's Section 6.3 conjecture.
"""

from benchmarks.conftest import run_and_report


def test_ablation_packet(benchmark):
    run_and_report(benchmark, "ablation-packet-switching")
