"""Extension: compiler flush-placement policies, measured.

Replays one reference stream under eager / section / oracle flush
placement and measures the achieved apl and processing power.
"""

from benchmarks.conftest import run_and_report


def test_extension_flush_policies(benchmark):
    run_and_report(benchmark, "extension-flush-policies", fast=True)
