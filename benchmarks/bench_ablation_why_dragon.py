"""Extension: why Dragon — the write-through-invalidate comparison.

Quantifies the paper's reliance on Archibald & Baer's protocol survey.
"""

from benchmarks.conftest import run_and_report


def test_ablation_why_dragon(benchmark):
    run_and_report(benchmark, "ablation-why-dragon", fast=True)
