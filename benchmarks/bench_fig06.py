"""Figure 6: schemes at high sharing.

    No-Cache saturates below power 2, Software-Flush below 5, Dragon
    keeps most of Base's power.
"""

from benchmarks.conftest import run_and_report


def test_fig06(benchmark):
    run_and_report(benchmark, "figure6")
