"""Vectorized grid sweeps vs the scalar evaluate loop.

The tentpole claim of the vectorized substrate is *figure-scale*
throughput: one ``sweep_grid`` call replaces thousands of scalar
``BusSystem.evaluate`` / ``NetworkSystem.evaluate`` calls and must be
at least 10x faster while returning bit-identical numbers.  The
pytest-benchmark entries here track both paths; ``test_grid_speedup``
records the measured ratio (``extra_info["speedup"]``) and enforces
the 10x floor.

The module also runs standalone for CI::

    python benchmarks/bench_vectorized.py --smoke

which checks vectorized-vs-scalar equivalence on a small grid for all
four schemes (bus and network) and prints a quick timing — seconds,
not minutes, suitable for ``scripts/check.sh``.
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.core import ALL_SCHEMES, BusSystem, NetworkSystem, WorkloadParams
from repro.experiments import GridSpec, sweep_grid

#: Figure-scale benchmark grid: 24 x 24 workload cells, 16 system
#: sizes — 9216 bus model evaluations per scheme.
_BENCH_SHD = tuple(float(v) for v in np.linspace(0.0, 0.6, 24))
_BENCH_APL = tuple(float(v) for v in np.linspace(1.0, 100.0, 24))
_BENCH_PROCESSORS = tuple(range(1, 17))

#: Small smoke grid: all four schemes, bus + network, < 1 s total.
_SMOKE_SHD = (0.0, 0.05, 0.25, 0.6)
_SMOKE_APL = (1.0, 7.7, 100.0)
_SMOKE_PROCESSORS = (1, 4, 16)
_SMOKE_STAGES = (2, 5)


def _spec(shd, apl) -> GridSpec:
    return GridSpec.of(WorkloadParams.middle(), shd=shd, apl=apl)


def _scalar_bus_sweep(scheme, spec: GridSpec, processors) -> np.ndarray:
    """The reference path: one ``evaluate`` call per grid cell."""
    bus = BusSystem()
    power = np.empty((len(processors),) + spec.shape)
    for count_index, count in enumerate(processors):
        for index in np.ndindex(spec.shape):
            params = spec.workload_at(index)
            power[(count_index,) + index] = bus.evaluate(
                scheme, params, count
            ).processing_power
    return power


def _scalar_network_sweep(scheme, spec: GridSpec, stages) -> np.ndarray:
    power = np.empty((len(stages),) + spec.shape)
    for stage_index, count in enumerate(stages):
        network = NetworkSystem(count)
        for index in np.ndindex(spec.shape):
            params = spec.workload_at(index)
            power[(stage_index,) + index] = network.evaluate(
                scheme, params
            ).processing_power
    return power


def _identical(a: np.ndarray, b: np.ndarray) -> bool:
    return bool(np.all((a == b) | (np.isnan(a) & np.isnan(b))))


# -- pytest-benchmark entries -------------------------------------------


def test_bus_grid_scalar(benchmark):
    spec = _spec(_BENCH_SHD, _BENCH_APL)
    benchmark.pedantic(
        lambda: _scalar_bus_sweep(
            ALL_SCHEMES[0], spec, _BENCH_PROCESSORS
        ),
        rounds=3,
        iterations=1,
    )


def test_bus_grid_vectorized(benchmark):
    spec = _spec(_BENCH_SHD, _BENCH_APL)
    benchmark(
        lambda: sweep_grid(
            ALL_SCHEMES[0], spec, processors=_BENCH_PROCESSORS
        )
    )


def test_network_grid_vectorized(benchmark):
    spec = _spec(_BENCH_SHD, _BENCH_APL)
    scheme = next(s for s in ALL_SCHEMES if not s.requires_broadcast)
    benchmark(
        lambda: sweep_grid(
            scheme, spec, machine="network", stages=_SMOKE_STAGES
        )
    )


def test_grid_speedup(benchmark):
    """Record and enforce the >= 10x figure-scale speedup."""
    spec = _spec(_BENCH_SHD, _BENCH_APL)
    scheme = ALL_SCHEMES[0]

    start = time.perf_counter()
    scalar = _scalar_bus_sweep(scheme, spec, _BENCH_PROCESSORS)
    scalar_seconds = time.perf_counter() - start

    surface = benchmark(
        lambda: sweep_grid(scheme, spec, processors=_BENCH_PROCESSORS)
    )
    vector_seconds = benchmark.stats.stats.min

    assert _identical(surface.power, scalar)
    speedup = scalar_seconds / vector_seconds
    benchmark.extra_info["scalar_seconds"] = scalar_seconds
    benchmark.extra_info["vectorized_seconds"] = vector_seconds
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["grid_cells"] = int(scalar.size)
    assert speedup >= 10.0, (
        f"vectorized sweep only {speedup:.1f}x faster than scalar "
        f"({scalar_seconds:.3f}s vs {vector_seconds:.3f}s)"
    )


# -- standalone smoke mode ----------------------------------------------


def run_smoke() -> int:
    """Small-grid equivalence + timing for all four schemes; 0 if ok."""
    spec = _spec(_SMOKE_SHD, _SMOKE_APL)
    failures = 0
    for scheme in ALL_SCHEMES:
        surface = sweep_grid(scheme, spec, processors=_SMOKE_PROCESSORS)
        scalar = _scalar_bus_sweep(scheme, spec, _SMOKE_PROCESSORS)
        if not _identical(surface.power, scalar):
            print(f"MISMATCH bus/{scheme.name}", file=sys.stderr)
            failures += 1
        if scheme.requires_broadcast:
            continue
        net_surface = sweep_grid(
            scheme, spec, machine="network", stages=_SMOKE_STAGES
        )
        net_scalar = _scalar_network_sweep(scheme, spec, _SMOKE_STAGES)
        if not _identical(net_surface.power, net_scalar):
            print(f"MISMATCH network/{scheme.name}", file=sys.stderr)
            failures += 1
    if failures:
        return 1

    bench_spec = _spec(_BENCH_SHD, _BENCH_APL)
    scheme = ALL_SCHEMES[0]
    start = time.perf_counter()
    scalar = _scalar_bus_sweep(scheme, bench_spec, _BENCH_PROCESSORS)
    scalar_seconds = time.perf_counter() - start
    start = time.perf_counter()
    surface = sweep_grid(
        scheme, bench_spec, processors=_BENCH_PROCESSORS
    )
    vector_seconds = time.perf_counter() - start
    if not _identical(surface.power, scalar):
        print("MISMATCH bus benchmark grid", file=sys.stderr)
        return 1
    speedup = scalar_seconds / vector_seconds
    print(
        f"vectorized smoke ok: {scalar.size} cells, scalar "
        f"{scalar_seconds:.3f}s, vectorized {vector_seconds:.3f}s "
        f"({speedup:.0f}x)"
    )
    if speedup < 10.0:
        print(f"speedup {speedup:.1f}x below the 10x floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    if "--smoke" in sys.argv[1:]:
        raise SystemExit(run_smoke())
    print(__doc__)
    raise SystemExit(
        "run under pytest (--benchmark-only) or with --smoke"
    )
