"""Shared helpers for the benchmark harness.

Each ``bench_*`` file regenerates one paper table or figure:

* it runs the registered experiment under ``pytest-benchmark`` (so the
  cost of regenerating each artefact is tracked),
* asserts every shape check the experiment encodes,
* and writes the rendered text report to ``reports/<experiment>.txt``
  so the regenerated rows/series can be compared with the paper.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import ExperimentResult, get_experiment

REPORTS_DIR = Path(__file__).resolve().parent.parent / "reports"


def run_and_report(
    benchmark, experiment_id: str, rounds: int = 1, **kwargs
) -> ExperimentResult:
    """Benchmark one experiment, save its report, assert its checks."""
    experiment = get_experiment(experiment_id)
    result = benchmark.pedantic(
        lambda: experiment.run(**kwargs), rounds=rounds, iterations=1
    )
    REPORTS_DIR.mkdir(exist_ok=True)
    report_path = REPORTS_DIR / f"{experiment_id}.txt"
    report_path.write_text(result.render() + "\n", encoding="utf-8")
    failed = [check for check in result.checks if not check.passed]
    assert not failed, [f"{c.name}: {c.detail}" for c in failed]
    return result


@pytest.fixture()
def reports_dir() -> Path:
    REPORTS_DIR.mkdir(exist_ok=True)
    return REPORTS_DIR
