"""Figure 7: effect of apl.

    apl=1 pushes Software-Flush below No-Cache; apl=100 reaches
    Dragon.
"""

from benchmarks.conftest import run_and_report


def test_fig07(benchmark):
    run_and_report(benchmark, "figure7")
