"""Table 7: workload parameter ranges.

    Regenerates the low/middle/high parameter table, including the
    1/apl presentation the paper uses.
"""

from benchmarks.conftest import run_and_report


def test_table07(benchmark):
    run_and_report(benchmark, "table7")
