"""Extension: exponential vs measured-mixture bus service times.

Probes the paper's own explanation of its model error (Section 3) by
solving the bus with the exact service variance of the operation mix.
"""

from benchmarks.conftest import run_and_report


def test_ablation_service_model(benchmark):
    run_and_report(benchmark, "ablation-service-model", fast=True)
