"""One-pass geometry families vs per-config ``Machine.run``.

The tentpole claim of the one-pass engine is *sweep-scale* simulation
throughput: one :func:`repro.sim.run_geometry_family` call replaces one
full trace replay per cache size — one traversal per (protocol, block
size) family instead of one per cell — while returning statistics
bit-identical to the per-config path.  The pytest-benchmark entries
here track both paths on the paper-bracketing eight-size family;
``test_family_speedup`` records the measured ratio
(``extra_info["speedup"]``) and enforces the 3x wall-clock floor, and
``test_family_traversals`` enforces the >= 5x traversal saving.

The module also runs standalone for CI::

    python benchmarks/bench_onepass.py --smoke

which checks family-vs-per-config bit-exactness for all three
geometry-local protocols on a reduced trace, then times the benchmark
family — seconds, not minutes, suitable for ``scripts/check.sh``.
"""

from __future__ import annotations

import sys
import time

from repro.obs.metrics import replay_counters
from repro.sim import Machine, SimulationConfig, run_geometry_family
from repro.trace import preset
from repro.verify.differential import stats_signature

#: Sweep-scale benchmark family: the paper's 16K-256K validation axis
#: extended down to 2K — eight cache sizes, one 160k-record trace.
_BENCH_PROTOCOL = "swflush"
_BENCH_SIZES = tuple(2048 << k for k in range(8))
_BENCH_RECORDS = 40_000

#: Small smoke family: all three fast-path protocols, < 10 s total.
_SMOKE_SIZES = (4096, 16384, 65536, 262144)
_SMOKE_RECORDS = 10_000

_WALL_FLOOR = 3.0
_SMOKE_WALL_FLOOR = 2.0
_TRAVERSAL_FLOOR = 5.0


def _trace(records: int):
    return preset("pops").generate(records_per_cpu=records)


def _per_config_sweep(protocol, trace, sizes) -> dict:
    """The reference path: one full ``Machine.run`` per cache size."""
    results = {}
    for size in sizes:
        config = SimulationConfig(cache_bytes=size)
        results[size] = Machine(protocol, config).run(trace)
    return results


def _identical(family: dict, reference: dict) -> bool:
    return all(
        stats_signature(family[size]) == stats_signature(reference[size])
        for size in reference
    )


# -- pytest-benchmark entries -------------------------------------------


def test_family_per_config(benchmark):
    trace = _trace(_BENCH_RECORDS)
    benchmark.pedantic(
        lambda: _per_config_sweep(_BENCH_PROTOCOL, trace, _BENCH_SIZES),
        rounds=3,
        iterations=1,
    )


def test_family_onepass(benchmark):
    trace = _trace(_BENCH_RECORDS)
    benchmark(
        lambda: run_geometry_family(_BENCH_PROTOCOL, trace, _BENCH_SIZES)
    )


def test_family_speedup(benchmark):
    """Record and enforce the >= 3x sweep-scale speedup."""
    trace = _trace(_BENCH_RECORDS)

    # Min over rounds on both sides, matching pytest-benchmark's own
    # statistic for the fast path.
    per_config_seconds = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        reference = _per_config_sweep(_BENCH_PROTOCOL, trace, _BENCH_SIZES)
        per_config_seconds = min(
            per_config_seconds, time.perf_counter() - start
        )

    family = benchmark(
        lambda: run_geometry_family(_BENCH_PROTOCOL, trace, _BENCH_SIZES)
    )
    onepass_seconds = benchmark.stats.stats.min

    assert _identical(family, reference)
    speedup = per_config_seconds / onepass_seconds
    benchmark.extra_info["per_config_seconds"] = per_config_seconds
    benchmark.extra_info["onepass_seconds"] = onepass_seconds
    benchmark.extra_info["speedup"] = speedup
    benchmark.extra_info["cache_sizes"] = len(_BENCH_SIZES)
    benchmark.extra_info["records"] = len(trace)
    assert speedup >= _WALL_FLOOR, (
        f"one-pass family only {speedup:.1f}x faster than per-config "
        f"({per_config_seconds:.3f}s vs {onepass_seconds:.3f}s)"
    )


def test_family_traversals():
    """One traversal per family: >= 5x fewer records replayed."""
    trace = _trace(_SMOKE_RECORDS)
    before, _ = replay_counters()
    run_geometry_family(_BENCH_PROTOCOL, trace, _BENCH_SIZES)
    onepass_replayed = replay_counters()[0] - before
    before, _ = replay_counters()
    _per_config_sweep(_BENCH_PROTOCOL, trace, _BENCH_SIZES)
    per_config_replayed = replay_counters()[0] - before
    ratio = per_config_replayed / onepass_replayed
    assert ratio >= _TRAVERSAL_FLOOR, (
        f"only {ratio:.1f}x fewer traversals "
        f"({onepass_replayed} vs {per_config_replayed} records)"
    )


# -- standalone smoke mode ----------------------------------------------


def run_smoke() -> int:
    """Bit-exactness for all three protocols + timing floor; 0 if ok."""
    trace = _trace(_SMOKE_RECORDS)
    failures = 0
    for protocol in ("base", "nocache", "swflush"):
        family = run_geometry_family(protocol, trace, _SMOKE_SIZES)
        reference = _per_config_sweep(protocol, trace, _SMOKE_SIZES)
        if not _identical(family, reference):
            print(f"MISMATCH onepass/{protocol}", file=sys.stderr)
            failures += 1
        if any(run.engine != "onepass" for run in family.values()):
            print(f"FAST PATH NOT USED for {protocol}", file=sys.stderr)
            failures += 1
    if failures:
        return 1

    bench_trace = _trace(_BENCH_RECORDS)
    run_geometry_family(_BENCH_PROTOCOL, bench_trace, _BENCH_SIZES)  # warm
    start = time.perf_counter()
    family = run_geometry_family(_BENCH_PROTOCOL, bench_trace, _BENCH_SIZES)
    onepass_seconds = time.perf_counter() - start
    start = time.perf_counter()
    reference = _per_config_sweep(
        _BENCH_PROTOCOL, bench_trace, _BENCH_SIZES
    )
    per_config_seconds = time.perf_counter() - start
    if not _identical(family, reference):
        print("MISMATCH onepass benchmark family", file=sys.stderr)
        return 1
    speedup = per_config_seconds / onepass_seconds
    print(
        f"onepass smoke ok: {len(_BENCH_SIZES)} sizes x "
        f"{len(bench_trace)} records, per-config "
        f"{per_config_seconds:.3f}s, one-pass {onepass_seconds:.3f}s "
        f"({speedup:.1f}x)"
    )
    if speedup < _SMOKE_WALL_FLOOR:
        print(
            f"speedup {speedup:.1f}x below the "
            f"{_SMOKE_WALL_FLOOR:.0f}x smoke floor",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    if "--smoke" in sys.argv[1:]:
        raise SystemExit(run_smoke())
    print(__doc__)
    raise SystemExit(
        "run under pytest (--benchmark-only) or with --smoke"
    )
