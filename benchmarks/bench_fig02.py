"""Figure 2: Dragon across cache sizes, <=4 CPUs.

    16K/64K/256K caches on the pops-like trace.
"""

from benchmarks.conftest import run_and_report


def test_fig02(benchmark):
    run_and_report(benchmark, "figure2", fast=True)
