"""Figure 5: schemes at middle sharing.

    Dragon near Base; Software-Flush flattens past ~10 processors;
    No-Cache saturates the bus.
"""

from benchmarks.conftest import run_and_report


def test_fig05(benchmark):
    run_and_report(benchmark, "figure5")
