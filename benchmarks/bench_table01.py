"""Table 1: system model operation costs.

    The published CPU/bus cycle table is rebuilt from machine
    primitives (block transfers, memory latency, miss processing) and
    must match all 11 published entries.
"""

from benchmarks.conftest import run_and_report


def test_table01(benchmark):
    run_and_report(benchmark, "table1")
