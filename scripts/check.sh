#!/usr/bin/env bash
# One-stop pre-merge check: byte-compile, tier-1 tests, benchmark smoke.
#
# Usage: scripts/check.sh
# Runs from any directory; everything is resolved relative to the repo
# root.  Exits non-zero on the first failure.

set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo"
export PYTHONPATH="$repo/src${PYTHONPATH:+:$PYTHONPATH}"

echo "== byte-compile src/ =="
python -m compileall -q src

echo "== tier-1 tests =="
python -m pytest -x -q

echo "== benchmark smoke (micro substrates) =="
python -m pytest benchmarks/bench_micro.py --benchmark-only \
    --benchmark-disable-gc -q

echo "== all checks passed =="
