#!/usr/bin/env bash
# One-stop pre-merge check: byte-compile, tier-1 tests, benchmark smoke.
#
# Usage: scripts/check.sh
# Runs from any directory; everything is resolved relative to the repo
# root.  Exits non-zero on the first failure.

set -euo pipefail

repo="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$repo"
export PYTHONPATH="$repo/src${PYTHONPATH:+:$PYTHONPATH}"

echo "== byte-compile src/ =="
python -m compileall -q src

echo "== static guard: chunked parallel dispatch =="
# The plain parallel path must amortise pickling by shipping work in
# chunks; a refactor that drops chunksize silently costs ~2x on large
# sweeps (see docs/ARCHITECTURE.md "Parallel experiment runner").
if ! grep -q "chunksize=" src/repro/experiments/parallel.py; then
    echo "FAIL: parallel_map no longer passes chunksize= to pool.map" >&2
    exit 1
fi

# Coverage gate for the core simulation and trace layers, active when
# pytest-cov is available (it is optional: [project.optional-dependencies]
# test).  Without it the tier-1 run is identical minus the gate.
cov_args=()
if python -c "import pytest_cov" >/dev/null 2>&1; then
    cov_args=(
        --cov=repro.sim --cov=repro.trace
        --cov-report=term --cov-fail-under=80
    )
else
    echo "(pytest-cov not installed; skipping the coverage floor)"
fi

echo "== tier-1 tests =="
python -m pytest -x -q "${cov_args[@]:+${cov_args[@]}}"

echo "== fuzz smoke =="
# No --protocols: the list is derived from the oracle registry, so new
# protocols (e.g. the hybrid family) are fuzzed the day they land.
python -m repro.cli fuzz --smoke \
    --artifact-dir "${TMPDIR:-/tmp}/swcc-fuzz-failures" \
    --manifest "${TMPDIR:-/tmp}/swcc-fuzz-manifest.jsonl"

echo "== exhaustive check smoke (every protocol, small model) =="
# BFS over all interleavings at 2 CPUs x 1 line x 1 set; every state
# space closes within this depth (the hybrids' pressure counters need
# depth 8; the stateless protocols close by 3), so the oracle
# guarantee is depth-unbounded (see docs/ARCHITECTURE.md "Exhaustive
# checking").
python -m repro.cli check --cpus 2 --lines 1 --sets 1 --depth 8 \
    --conformance 64 \
    --artifact-dir "${TMPDIR:-/tmp}/swcc-check-failures" \
    --manifest "${TMPDIR:-/tmp}/swcc-check-manifest.jsonl"

echo "== benchmark smoke (micro substrates) =="
python -m pytest benchmarks/bench_micro.py --benchmark-only \
    --benchmark-disable-gc -q

echo "== vectorized kernels: equivalence + speedup smoke =="
# Small-grid bit-exactness against the scalar path for all four
# schemes (bus and network), then the figure-scale 10x speedup floor.
python benchmarks/bench_vectorized.py --smoke

echo "== one-pass geometry families: equivalence + speedup smoke =="
# Family-vs-per-config bit-exactness for the three geometry-local
# protocols, then the sweep-scale speedup floor on the benchmark
# family (2x in smoke; the recorded baseline enforces 3x).
python benchmarks/bench_onepass.py --smoke

echo "== epoch families (dragon/wti) + segment engine: smoke =="
# Family-vs-per-config bit-exactness for both geometry-coupled
# protocols and the segment-scan engine, then the eight-size sweep
# speedup floor (1.6x in smoke; the recorded baseline enforces 2x).
python benchmarks/bench_coupled.py --smoke

echo "== bus arbitration disciplines: exactness + overhead smoke =="
# fcfs bit-exactness (arbitrated engine vs columnar, plus the folded
# columnar+arb path vs the deferred reference), the oracle invariants
# for every registered discipline, then the deferred-grant overhead
# ceiling (16x in smoke; the recorded baseline enforces 13x) and the
# folded-overhead parity ceiling (1.5x).
python benchmarks/bench_bus.py --smoke

echo "== wti scan-merge tiers: exactness + speedup smoke =="
# auto-vs-loop bit-exactness on the reduced sweep, the quiet-trace
# epoch-scan engagement pin, then the tiered-merge sweep floor
# (1.05x in smoke; the recorded baseline enforces 1.08x).
python benchmarks/bench_scan_merge.py --smoke

echo "== all checks passed =="
